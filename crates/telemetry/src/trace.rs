//! Chrome trace-event export with deterministic, totally ordered events.
//!
//! [`TraceEvent`] is a compact integer record of one simulator event —
//! a request-lifecycle span, a control-plane command, a chaos event, a
//! repair dispatch. Shards emit events independently; the engine
//! concatenates and sorts them under the struct's total order before
//! rendering, so the JSON bytes are identical for any shard/thread
//! partition. [`render_chrome_trace`] emits the
//! [Chrome trace-event format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! (`{"traceEvents":[...]}`), which Perfetto and `chrome://tracing` open
//! directly: `pid` rows are cells, `tid` rows are instances/slots,
//! request spans nest by phase, and KV-transfer/decode legs are async
//! spans keyed by the RNG-free span id.

/// Chrome trace-event phase of one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Ph {
    /// A complete span (`ph:"X"`, has a duration).
    Complete,
    /// A point-in-time instant (`ph:"i"`).
    Instant,
    /// Async-span begin (`ph:"b"`, carries an id).
    AsyncBegin,
    /// Async-span end (`ph:"e"`, carries an id).
    AsyncEnd,
}

impl Ph {
    fn code(self) -> char {
        match self {
            Ph::Complete => 'X',
            Ph::Instant => 'i',
            Ph::AsyncBegin => 'b',
            Ph::AsyncEnd => 'e',
        }
    }
}

/// One trace event. Field order *is* the sort key: events sort by
/// timestamp, then cell, then instance/slot, then category/name/phase,
/// then id/duration/argument — a total order over every field, so the
/// post-merge sort leaves exactly one byte rendering per event multiset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceEvent {
    /// Simulated timestamp, µs (the engine's native integer time).
    pub ts_us: u64,
    /// Cell index (rendered as `pid`).
    pub pid: u32,
    /// Instance global index or cell-local slot (rendered as `tid`).
    pub tid: u32,
    /// Event category (`req`, `ctrl`, `chaos`).
    pub cat: &'static str,
    /// Event name.
    pub name: &'static str,
    /// Phase.
    pub ph: Ph,
    /// Async span id (0 for non-async events).
    pub id: u64,
    /// Duration, µs (complete spans only).
    pub dur_us: u64,
    /// One free integer argument (tenant id, affected count, wait µs...).
    pub arg: u64,
}

impl TraceEvent {
    /// A complete (`X`) span.
    pub fn complete(
        cat: &'static str,
        name: &'static str,
        ts_us: u64,
        dur_us: u64,
        pid: u32,
        tid: u32,
        arg: u64,
    ) -> Self {
        Self {
            ts_us,
            pid,
            tid,
            cat,
            name,
            ph: Ph::Complete,
            id: 0,
            dur_us,
            arg,
        }
    }

    /// A point-in-time (`i`) instant.
    pub fn instant(
        cat: &'static str,
        name: &'static str,
        ts_us: u64,
        pid: u32,
        tid: u32,
        arg: u64,
    ) -> Self {
        Self {
            ts_us,
            pid,
            tid,
            cat,
            name,
            ph: Ph::Instant,
            id: 0,
            dur_us: 0,
            arg,
        }
    }

    /// An async-begin (`b`) event keyed by `id`.
    pub fn async_begin(
        cat: &'static str,
        name: &'static str,
        ts_us: u64,
        pid: u32,
        tid: u32,
        id: u64,
        arg: u64,
    ) -> Self {
        Self {
            ts_us,
            pid,
            tid,
            cat,
            name,
            ph: Ph::AsyncBegin,
            id,
            dur_us: 0,
            arg,
        }
    }

    /// An async-end (`e`) event keyed by `id`.
    pub fn async_end(
        cat: &'static str,
        name: &'static str,
        ts_us: u64,
        pid: u32,
        tid: u32,
        id: u64,
        arg: u64,
    ) -> Self {
        Self {
            ts_us,
            pid,
            tid,
            cat,
            name,
            ph: Ph::AsyncEnd,
            id,
            dur_us: 0,
            arg,
        }
    }
}

/// Whether a span id is in the 1-in-`every` trace sample. Span ids pack
/// `(instance_global_index << 32) | launch_counter`; sampling keys on
/// the launch counter so every instance contributes evenly. `every == 0`
/// disables tracing entirely. Hot paths should hold a [`SpanSampler`]
/// instead of calling this per span.
pub fn span_sampled(span: u64, every: u32) -> bool {
    SpanSampler::new(every).sampled(span)
}

/// Division-free 1-in-`every` span sampling for per-launch hot paths:
/// the divisibility test is a wrapping multiply against a precomputed
/// constant (D. Lemire's fast remainder check), so a sampler in the
/// serve loop costs one multiply per span instead of a 64-bit division.
#[derive(Debug, Clone, Copy)]
pub struct SpanSampler {
    every: u32,
    /// `ceil(2^64 / every)` as a wrapping constant; unused for
    /// `every <= 1`.
    m: u64,
}

impl SpanSampler {
    /// Builds a sampler for the 1-in-`every` sample (`0` disables).
    pub fn new(every: u32) -> Self {
        let m = if every > 1 {
            (u64::MAX / every as u64).wrapping_add(1)
        } else {
            0
        };
        Self { every, m }
    }

    /// The configured sampling period.
    pub fn every(&self) -> u32 {
        self.every
    }

    /// Whether `span` is in the sample — exactly
    /// [`span_sampled`]`(span, self.every())`.
    #[inline]
    pub fn sampled(&self, span: u64) -> bool {
        match self.every {
            0 => false,
            1 => true,
            // `x` divides by `every` iff `x * m` wraps below `m`.
            _ => (span & 0xFFFF_FFFF).wrapping_mul(self.m) < self.m,
        }
    }
}

/// Sorts `events` into their total order and renders Chrome trace-event
/// JSON. Sorting here (rather than trusting emission order) is what
/// makes the bytes shard/thread-invariant.
pub fn render_chrome_trace(events: &mut [TraceEvent]) -> String {
    events.sort_unstable();
    let mut out = String::with_capacity(events.len() * 110 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("{\"name\":\"");
        out.push_str(e.name);
        out.push_str("\",\"cat\":\"");
        out.push_str(e.cat);
        out.push_str("\",\"ph\":\"");
        out.push(e.ph.code());
        out.push_str("\",\"ts\":");
        out.push_str(&e.ts_us.to_string());
        if e.ph == Ph::Complete {
            out.push_str(",\"dur\":");
            out.push_str(&e.dur_us.to_string());
        }
        out.push_str(",\"pid\":");
        out.push_str(&e.pid.to_string());
        out.push_str(",\"tid\":");
        out.push_str(&e.tid.to_string());
        if matches!(e.ph, Ph::AsyncBegin | Ph::AsyncEnd) {
            out.push_str(",\"id\":\"");
            out.push_str(&format!("{:#x}", e.id));
            out.push('"');
        }
        if e.ph == Ph::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{\"v\":");
        out.push_str(&e.arg.to_string());
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Validates that `s` is one well-formed JSON value (the whole input).
/// A minimal hand-rolled checker — the workspace's vendored `serde_json`
/// shim serializes but does not parse — used by the trace schema tests
/// to prove exported files open in Perfetto-compatible readers.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i, 0)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing content at byte {i}"));
    }
    Ok(())
}

const MAX_DEPTH: usize = 128;

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".into());
    }
    match b.get(*i) {
        Some(b'{') => object(b, i, depth),
        Some(b'[') => array(b, i, depth),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *i)),
        None => Err("unexpected end of input".into()),
    }
}

fn object(b: &[u8], i: &mut usize, depth: usize) -> Result<(), String> {
    *i += 1; // '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        if b.get(*i) != Some(&b'"') {
            return Err(format!("object key must be a string at byte {i}", i = *i));
        }
        string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected ':' at byte {i}", i = *i));
        }
        *i += 1;
        skip_ws(b, i);
        value(b, i, depth + 1)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {i}", i = *i)),
        }
    }
}

fn array(b: &[u8], i: &mut usize, depth: usize) -> Result<(), String> {
    *i += 1; // '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        value(b, i, depth + 1)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {i}", i = *i)),
        }
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // opening quote
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => match b.get(*i + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 2,
                Some(b'u') => {
                    let hex = b.get(*i + 2..*i + 6).ok_or("truncated \\u escape")?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {i}", i = *i));
                    }
                    *i += 6;
                }
                _ => return Err(format!("bad escape at byte {i}", i = *i)),
            },
            0x00..=0x1F => return Err(format!("raw control byte in string at {i}", i = *i)),
            _ => *i += 1,
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| {
        let s = *i;
        while *i < b.len() && b[*i].is_ascii_digit() {
            *i += 1;
        }
        *i > s
    };
    if !digits(b, i) {
        return Err(format!("expected digits at byte {start}"));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !digits(b, i) {
            return Err(format!("expected fraction digits at byte {i}", i = *i));
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return Err(format!("expected exponent digits at byte {i}", i = *i));
        }
    }
    Ok(())
}

fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.get(*i..*i + lit.len()) == Some(lit) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}", i = *i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sort_total_and_render_valid_json() {
        let mut ev = vec![
            TraceEvent::async_end("req", "decode", 2_000_000, 0, 3, 0x1_0000_0001, 0),
            TraceEvent::complete("req", "prefill", 1_000_000, 50_000, 0, 3, 1),
            TraceEvent::instant("ctrl", "activate", 1_000_000, 0, 2, 0),
            TraceEvent::async_begin("req", "decode", 1_000_000, 0, 3, 0x1_0000_0001, 0),
        ];
        let json = render_chrome_trace(&mut ev);
        validate_json(&json).expect("chrome trace must be well-formed JSON");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"b\""));
        assert!(json.contains("\"id\":\"0x100000001\""));
        // Same multiset in any order renders the same bytes.
        let mut shuffled = vec![ev[3], ev[1], ev[0], ev[2]];
        assert_eq!(render_chrome_trace(&mut shuffled), json);
    }

    #[test]
    fn span_sampling_keys_on_launch_counter() {
        assert!(!span_sampled(5, 0)); // disabled
        assert!(span_sampled((7u64 << 32) | 64, 64));
        assert!(!span_sampled((7u64 << 32) | 65, 64));
        assert!(span_sampled(u64::MAX, 1)); // every launch
    }

    #[test]
    fn sampler_matches_the_modulo_definition() {
        for every in [0u32, 1, 2, 3, 5, 7, 64, 100, 4096, 9999, u32::MAX] {
            let s = SpanSampler::new(every);
            assert_eq!(s.every(), every);
            for low in (0u64..5000).chain([u32::MAX as u64 - 1, u32::MAX as u64]) {
                let span = (42u64 << 32) | low;
                let want = every > 0 && low % every as u64 == 0;
                assert_eq!(s.sampled(span), want, "every={every} low={low}");
            }
        }
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "{\"a\":[1,2,{\"b\":\"c\\n\\u00e9\"}],\"d\":true}",
            " { \"x\" : [ ] } ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "\"unterminated",
            "01x",
            "{} extra",
            "{\"a\":1,}",
        ] {
            assert!(validate_json(bad).is_err(), "must reject {bad:?}");
        }
    }
}

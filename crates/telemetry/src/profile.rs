//! Engine self-profiling: per-phase wall-clock time.
//!
//! A [`PhaseProfile`] accumulates nanoseconds and call counts per engine
//! phase (the indices below). It measures the *host*, not the
//! simulation, so it is explicitly non-deterministic and must never feed
//! a determinism-diffed artifact — the engine routes it to the
//! `--perf-json` / `BENCH_fleet.json` path only. This is the baseline
//! evidence the ROADMAP's event-driven-core refactor is measured
//! against: it answers "where does tick time actually go".

/// Phase names, indexed by the `PHASE_*` constants.
pub const PHASES: [&str; 8] = [
    "chaos",
    "lifecycle",
    "control",
    "kv",
    "route",
    "serve",
    "sample",
    "merge",
];

/// Chaos-schedule application + repair-crew dispatch.
pub const PHASE_CHAOS: usize = 0;
/// Per-instance failure/recovery lifecycle (and decode-retry reroutes).
pub const PHASE_LIFECYCLE: usize = 1;
/// Control ticks: observation build, policy stack, command apply.
pub const PHASE_CONTROL: usize = 2;
/// KV-link delivery into the decode pool.
pub const PHASE_KV: usize = 3;
/// Arrival generation and cell routing.
pub const PHASE_ROUTE: usize = 4;
/// The serve loop (prefill/decode stepping) + energy accounting.
pub const PHASE_SERVE: usize = 5;
/// Telemetry sampling (series snapshots).
pub const PHASE_SAMPLE: usize = 6;
/// Cross-shard report/series/trace merging.
pub const PHASE_MERGE: usize = 7;

/// Accumulated wall-clock nanoseconds and call counts per engine phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Nanoseconds per phase, indexed by the `PHASE_*` constants.
    pub ns: [u64; PHASES.len()],
    /// Times each phase was timed.
    pub calls: [u64; PHASES.len()],
}

impl PhaseProfile {
    /// An all-zero profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one timed interval to `phase`.
    pub fn record(&mut self, phase: usize, ns: u64) {
        self.ns[phase] += ns;
        self.calls[phase] += 1;
    }

    /// Adds `other` into `self` (merging shard profiles).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.ns.iter_mut().zip(&other.ns) {
            *a += b;
        }
        for (a, b) in self.calls.iter_mut().zip(&other.calls) {
            *a += b;
        }
    }

    /// Total nanoseconds across phases.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Renders the profile as one JSON object:
    /// `{"total_ns":N,"phases":{"serve":{"ns":...,"calls":...},...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"total_ns\":");
        out.push_str(&self.total_ns().to_string());
        out.push_str(",\"phases\":{");
        for (i, name) in PHASES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":{\"ns\":");
            out.push_str(&self.ns[i].to_string());
            out.push_str(",\"calls\":");
            out.push_str(&self.calls[i].to_string());
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// One human-readable line: phases by share of total time.
    pub fn summary(&self) -> String {
        let total = self.total_ns().max(1);
        let mut parts: Vec<(usize, u64)> = self.ns.iter().copied().enumerate().collect();
        parts.sort_by_key(|&(i, ns)| (std::cmp::Reverse(ns), i));
        let body: Vec<String> = parts
            .iter()
            .filter(|&&(_, ns)| ns > 0)
            .map(|&(i, ns)| format!("{} {:.1}%", PHASES[i], ns as f64 * 100.0 / total as f64))
            .collect();
        format!("profile: {}", body.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_merge_and_render() {
        let mut a = PhaseProfile::new();
        a.record(PHASE_SERVE, 600);
        a.record(PHASE_SERVE, 400);
        a.record(PHASE_ROUTE, 1_000);
        let mut b = PhaseProfile::new();
        b.record(PHASE_MERGE, 2_000);
        a.merge(&b);
        assert_eq!(a.total_ns(), 4_000);
        assert_eq!(a.ns[PHASE_SERVE], 1_000);
        assert_eq!(a.calls[PHASE_SERVE], 2);
        let json = a.to_json();
        assert!(json.contains("\"total_ns\":4000"));
        assert!(json.contains("\"serve\":{\"ns\":1000,\"calls\":2}"));
        let line = a.summary();
        assert!(line.starts_with("profile: merge 50.0%"), "{line}");
    }
}

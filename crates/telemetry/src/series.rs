//! Deterministic time-series metrics over fixed integer-µs windows.
//!
//! A [`SeriesRecorder`] holds named metrics, each a vector with one `u64`
//! value per sample window. Gauges accumulate state read at the window's
//! sample instant (summing across cells gives the fleet-wide value);
//! counters accumulate per-window deltas of monotone totals. Both merge
//! across shards by elementwise addition keyed on a `BTreeMap`, so the
//! merged recorder — and the JSONL/CSV bytes rendered from it — is
//! identical for any shard/thread partition.

use std::collections::BTreeMap;

/// How a metric's per-window values combine and read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// State sampled at the window's end instant (e.g. queue depth).
    Gauge,
    /// Events counted within the window (e.g. arrivals).
    Counter,
}

impl MetricKind {
    /// Stable lowercase label for export headers.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Gauge => "gauge",
            MetricKind::Counter => "counter",
        }
    }
}

/// One named series: a kind plus one value per sample window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metric {
    /// Gauge or counter.
    pub kind: MetricKind,
    /// One value per window, index `w` covering
    /// `(w·dt_us, (w+1)·dt_us]` of simulated time.
    pub values: Vec<u64>,
}

/// A stable handle to one metric of a [`SeriesRecorder`], for hot paths
/// that sample the same metrics every window: resolve the name once with
/// [`SeriesRecorder::id`], then accumulate by index with
/// [`SeriesRecorder::add_at`] — no per-sample string formatting or map
/// lookup. Ids are only meaningful for the recorder that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(usize);

/// A set of named integer time series over a fixed window grid.
///
/// Names resolve through a `BTreeMap` index into a dense metric vector,
/// so exports iterate lexicographically (shard-invariant bytes) while
/// id-based accumulation is an array index.
#[derive(Debug, Clone)]
pub struct SeriesRecorder {
    dt_us: u64,
    windows: usize,
    index: BTreeMap<String, usize>,
    metrics: Vec<Metric>,
}

/// Equality is semantic — the same named series with the same values —
/// not registration order, so recorders merged in different shard orders
/// still compare equal.
impl PartialEq for SeriesRecorder {
    fn eq(&self, other: &Self) -> bool {
        self.dt_us == other.dt_us
            && self.windows == other.windows
            && self.index.len() == other.index.len()
            && self
                .sorted()
                .zip(other.sorted())
                .all(|((an, am), (bn, bm))| an == bn && am == bm)
    }
}

impl SeriesRecorder {
    /// Creates a recorder with `windows` sample windows of `dt_us`
    /// microseconds each.
    pub fn new(dt_us: u64, windows: usize) -> Self {
        Self {
            dt_us: dt_us.max(1),
            windows,
            index: BTreeMap::new(),
            metrics: Vec::new(),
        }
    }

    /// Metrics in export (lexicographic) order.
    fn sorted(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.index
            .iter()
            .map(|(n, &i)| (n.as_str(), &self.metrics[i]))
    }

    /// Resolves (registering on first touch) the [`MetricId`] for
    /// `name`; `kind` must stay consistent across touches.
    pub fn id(&mut self, name: &str, kind: MetricKind) -> MetricId {
        if let Some(&i) = self.index.get(name) {
            debug_assert_eq!(
                self.metrics[i].kind, kind,
                "metric {name} re-registered with a different kind"
            );
            return MetricId(i);
        }
        let i = self.metrics.len();
        self.index.insert(name.to_string(), i);
        self.metrics.push(Metric {
            kind,
            values: vec![0; self.windows],
        });
        MetricId(i)
    }

    /// Accumulates `value` at `window` by id (out-of-range windows are
    /// ignored, as in [`SeriesRecorder::add`]).
    #[inline]
    pub fn add_at(&mut self, id: MetricId, window: usize, value: u64) {
        if window < self.windows {
            self.metrics[id.0].values[window] += value;
        }
    }

    /// Window length, microseconds of simulated time.
    pub fn dt_us(&self) -> u64 {
        self.dt_us
    }

    /// Number of sample windows.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Accumulates `value` into `name` at `window` (out-of-range windows
    /// are ignored — the horizon's trailing partial window is dropped by
    /// construction). The metric is created on first touch; `kind` must
    /// stay consistent across touches.
    pub fn add(&mut self, name: &str, kind: MetricKind, window: usize, value: u64) {
        let id = self.id(name, kind);
        self.add_at(id, window, value);
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.index.get(name).map(|&i| &self.metrics[i])
    }

    /// Metric names in export (lexicographic) order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.index.keys().map(String::as_str)
    }

    /// Number of distinct metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when no metric was ever touched.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Adds `other` into `self` elementwise (associative, commutative —
    /// shards merge in any order to the same recorder). Both recorders
    /// must share the window grid.
    pub fn merge(&mut self, other: &SeriesRecorder) {
        debug_assert_eq!(self.dt_us, other.dt_us);
        debug_assert_eq!(self.windows, other.windows);
        for (name, &i) in &other.index {
            let m = &other.metrics[i];
            let mine = self.id(name, m.kind);
            for (a, b) in self.metrics[mine.0].values.iter_mut().zip(&m.values) {
                *a += b;
            }
        }
    }

    /// Renders the series as JSONL: a meta header line (window grid,
    /// metric names, which metrics are counters), then one all-integer
    /// object per window keyed by metric name, `t_us` being the window's
    /// end instant. Purely integer content over a deterministic metric
    /// order, so the bytes are shard/thread-invariant.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"litegpu-series-v1\",\"dt_us\":");
        out.push_str(&self.dt_us.to_string());
        out.push_str(",\"windows\":");
        out.push_str(&self.windows.to_string());
        out.push_str(",\"metrics\":[");
        for (i, name) in self.names().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push('"');
        }
        out.push_str("],\"counters\":[");
        let mut first = true;
        for (name, m) in self.sorted() {
            if m.kind == MetricKind::Counter {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push('"');
                out.push_str(name);
                out.push('"');
            }
        }
        out.push_str("]}\n");
        for w in 0..self.windows {
            out.push_str("{\"t_us\":");
            out.push_str(&((w as u64 + 1) * self.dt_us).to_string());
            for (name, m) in self.sorted() {
                out.push_str(",\"");
                out.push_str(name);
                out.push_str("\":");
                out.push_str(&m.values[w].to_string());
            }
            out.push_str("}\n");
        }
        out
    }

    /// Renders the series as CSV: a `t_us,...names` header then one
    /// integer row per window.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_us");
        for name in self.names() {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        for w in 0..self.windows {
            out.push_str(&((w as u64 + 1) * self.dt_us).to_string());
            for (_, m) in self.sorted() {
                out.push(',');
                out.push_str(&m.values[w].to_string());
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_based_accumulation_matches_named() {
        let mut by_name = SeriesRecorder::new(10, 4);
        let mut by_id = SeriesRecorder::new(10, 4);
        let q = by_id.id("queued", MetricKind::Gauge);
        let a = by_id.id("arrived", MetricKind::Counter);
        assert_eq!(q, by_id.id("queued", MetricKind::Gauge), "ids are stable");
        for w in 0..5 {
            by_name.add("queued", MetricKind::Gauge, w, 3);
            by_name.add("arrived", MetricKind::Counter, w, w as u64);
            by_id.add_at(q, w, 3);
            by_id.add_at(a, w, w as u64);
        }
        assert_eq!(by_name, by_id);
        assert_eq!(by_name.to_jsonl(), by_id.to_jsonl());
    }

    #[test]
    fn add_accumulates_and_ignores_out_of_range() {
        let mut r = SeriesRecorder::new(1_000_000, 3);
        r.add("queued", MetricKind::Gauge, 0, 5);
        r.add("queued", MetricKind::Gauge, 0, 2);
        r.add("queued", MetricKind::Gauge, 2, 9);
        r.add("queued", MetricKind::Gauge, 3, 99); // dropped
        assert_eq!(r.get("queued").unwrap().values, vec![7, 0, 9]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn merge_is_order_independent() {
        let mk = |vals: &[(usize, u64)], name: &str| {
            let mut r = SeriesRecorder::new(10, 4);
            for &(w, v) in vals {
                r.add(name, MetricKind::Counter, w, v);
            }
            r
        };
        let a = mk(&[(0, 1), (2, 3)], "arrived");
        let b = mk(&[(1, 5), (2, 4)], "arrived");
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get("arrived").unwrap().values, vec![1, 5, 7, 0]);
        // A metric only one shard saw merges as if the other held zeros.
        let mut c = SeriesRecorder::new(10, 4);
        c.add("shed", MetricKind::Counter, 3, 2);
        ab.merge(&c);
        assert_eq!(ab.get("shed").unwrap().values, vec![0, 0, 0, 2]);
    }

    #[test]
    fn jsonl_and_csv_are_integer_and_ordered() {
        let mut r = SeriesRecorder::new(60_000_000, 2);
        r.add("b_gauge", MetricKind::Gauge, 0, 11);
        r.add("a_count", MetricKind::Counter, 1, 7);
        let jsonl = r.to_jsonl();
        let mut lines = jsonl.lines();
        let head = lines.next().unwrap();
        assert!(
            head.contains("\"metrics\":[\"a_count\",\"b_gauge\"]"),
            "{head}"
        );
        assert!(head.contains("\"counters\":[\"a_count\"]"), "{head}");
        assert_eq!(
            lines.next().unwrap(),
            "{\"t_us\":60000000,\"a_count\":0,\"b_gauge\":11}"
        );
        assert_eq!(
            lines.next().unwrap(),
            "{\"t_us\":120000000,\"a_count\":7,\"b_gauge\":0}"
        );
        let csv = r.to_csv();
        assert_eq!(csv, "t_us,a_count,b_gauge\n60000000,0,11\n120000000,7,0\n");
    }
}

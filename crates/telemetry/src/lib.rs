//! Deterministic observability primitives for the fleet simulator.
//!
//! Three layers, matching what the engine wires in:
//!
//! - [`series`]: integer time-series metrics ([`SeriesRecorder`]) sampled
//!   on a fixed integer-µs cadence inside the shard partition. Samples
//!   are derived purely from simulation state at integer timestamps and
//!   merge by elementwise addition, so the exported JSONL/CSV bytes are
//!   shard/thread-invariant — the same guarantee the `FleetReport`
//!   carries.
//! - [`trace`]: structured event export ([`TraceEvent`]) in Chrome
//!   trace-event JSON, openable directly in Perfetto or
//!   `chrome://tracing`. Events carry deterministic identities (RNG-free
//!   span ids) and are totally ordered before rendering, so trace bytes
//!   are shard/thread-invariant too.
//! - [`profile`]: engine self-profiling ([`PhaseProfile`]) — per-phase
//!   wall-clock nanoseconds. Explicitly *not* deterministic (it measures
//!   the host), and therefore kept out of every determinism-diffed
//!   artifact; it feeds `BENCH_fleet.json` only.
//!
//! The crate is dependency-free: all exports are hand-built JSON over
//! integers, and [`trace::validate_json`] is a small self-contained
//! well-formedness checker used by the schema tests.

pub mod profile;
pub mod series;
pub mod trace;

pub use profile::{PhaseProfile, PHASES};
pub use series::{Metric, MetricId, MetricKind, SeriesRecorder};
pub use trace::{render_chrome_trace, span_sampled, validate_json, Ph, SpanSampler, TraceEvent};

//! Semiconductor manufacturing economics models for the `litegpu` suite.
//!
//! This crate is the *fab substrate* behind §2 of the Lite-GPU paper
//! ("Good things come in small packages", HotOS '25). The paper claims that
//! quartering an H100-class compute die raises yield by ~1.8× and cuts
//! manufacturing cost by ~50%. Those numbers come from standard die-yield
//! calculators; this crate implements the published models such calculators
//! are built from, so every economic claim in the paper can be recomputed
//! and swept:
//!
//! - [`wafer`]: wafer geometry and dies-per-wafer (analytic approximation
//!   and exact grid placement).
//! - [`yield_model`]: Poisson, Murphy, Seeds, Bose-Einstein and
//!   negative-binomial yield models, plus a radial defect-density profile
//!   (after Teets, 1996).
//! - [`cost`]: wafer cost → cost per good die → packaged GPU cost,
//!   including interposer (CoWoS-class) and HBM stack accounting.
//! - [`binning`]: partial-good die harvesting (selling dies with a few
//!   defective SMs disabled), which narrows — but does not close — the
//!   yield gap between large and small dies.
//!
//! # Examples
//!
//! Reproduce the paper's §2 claim (1.8× yield at 1/4 area):
//!
//! ```
//! use litegpu_fab::yield_model::YieldModel;
//!
//! let d0 = 0.1; // defects per cm^2, a typical leading-edge figure
//! let h100_area = 814.0; // mm^2
//! let lite_area = h100_area / 4.0;
//! let model = YieldModel::Poisson;
//! let ratio = model.yield_fraction(lite_area, d0) / model.yield_fraction(h100_area, d0);
//! assert!((ratio - 1.8).abs() < 0.1, "paper claims ~1.8x, got {ratio}");
//! ```

pub mod binning;
pub mod cost;
pub mod wafer;
pub mod yield_model;

pub use binning::BinningPolicy;
pub use cost::{DieCostModel, ManufacturingComparison, PackageCostModel, ProcessNode};
pub use wafer::{DieGeometry, Wafer};
pub use yield_model::{RadialDefectProfile, YieldModel};

/// Errors produced by fab-model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum FabError {
    /// A geometric or physical parameter was non-positive or non-finite.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The die does not fit on the wafer's usable area at all.
    DieTooLarge {
        /// Die area in mm².
        die_area_mm2: f64,
        /// Usable wafer diameter in mm.
        usable_diameter_mm: f64,
    },
}

impl core::fmt::Display for FabError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FabError::InvalidParameter { name, value } => {
                write!(f, "invalid fab parameter {name} = {value}")
            }
            FabError::DieTooLarge {
                die_area_mm2,
                usable_diameter_mm,
            } => write!(
                f,
                "die of {die_area_mm2} mm^2 does not fit a usable wafer diameter of \
                 {usable_diameter_mm} mm"
            ),
        }
    }
}

impl std::error::Error for FabError {}

/// Result alias for fab-model operations.
pub type Result<T> = core::result::Result<T, FabError>;

pub(crate) fn check_positive(name: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(FabError::InvalidParameter { name, value })
    }
}

pub(crate) fn check_non_negative(name: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(FabError::InvalidParameter { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_positive_accepts_positive() {
        assert_eq!(check_positive("x", 1.5).unwrap(), 1.5);
    }

    #[test]
    fn check_positive_rejects_zero_negative_nan() {
        assert!(check_positive("x", 0.0).is_err());
        assert!(check_positive("x", -1.0).is_err());
        assert!(check_positive("x", f64::NAN).is_err());
        assert!(check_positive("x", f64::INFINITY).is_err());
    }

    #[test]
    fn check_non_negative_accepts_zero() {
        assert_eq!(check_non_negative("x", 0.0).unwrap(), 0.0);
    }

    #[test]
    fn error_display_is_informative() {
        let e = FabError::InvalidParameter {
            name: "area",
            value: -1.0,
        };
        assert!(e.to_string().contains("area"));
        let e = FabError::DieTooLarge {
            die_area_mm2: 1e6,
            usable_diameter_mm: 294.0,
        };
        assert!(e.to_string().contains("294"));
    }
}

//! Partial-good die harvesting ("binning").
//!
//! Real GPUs ship with spare SMs: an H100 die has 144 physical SMs but the
//! SXM product enables 132, so a die with a few defective SMs is still
//! sellable. Binning narrows the yield gap between big and small dies, so
//! an honest Lite-GPU economics argument must model it — this module is the
//! ablation for the paper's §2 cost claim.
//!
//! The model: killer defects arrive as a Poisson process with rate
//! `A·D0`. A fraction `uncore_fraction` of the die is non-redundant logic
//! (any hit scraps the die); the rest is an array of `total_units`
//! identical SMs. A die is sellable if no uncore hit occurs **and** the
//! number of *distinct* damaged SMs is at most `total_units −
//! enabled_units`. The distinct-damage distribution is the classical
//! occupancy problem, computed with a stable O(n·m) dynamic program.

use crate::{check_non_negative, FabError, Result};

/// A binning policy: how many SMs exist, how many must work, and how much
/// of the die is non-redundant.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BinningPolicy {
    /// Physical SM count on the die.
    pub total_units: u32,
    /// SMs that must be functional for the product bin.
    pub enabled_units: u32,
    /// Fraction of die area that is non-redundant (uncore): L2 slices,
    /// crossbar, PHYs, etc. A defect here always kills the die.
    pub uncore_fraction: f64,
}

impl BinningPolicy {
    /// Creates a policy, validating `enabled ≤ total` and
    /// `uncore_fraction ∈ [0, 1)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use litegpu_fab::binning::BinningPolicy;
    /// // H100 SXM: 144 physical SMs, 132 enabled.
    /// let p = BinningPolicy::new(144, 132, 0.2).unwrap();
    /// assert_eq!(p.max_disabled(), 12);
    /// ```
    pub fn new(total_units: u32, enabled_units: u32, uncore_fraction: f64) -> Result<Self> {
        if total_units == 0 || enabled_units == 0 || enabled_units > total_units {
            return Err(FabError::InvalidParameter {
                name: "enabled_units",
                value: enabled_units as f64,
            });
        }
        let u = check_non_negative("uncore_fraction", uncore_fraction)?;
        if u >= 1.0 {
            return Err(FabError::InvalidParameter {
                name: "uncore_fraction",
                value: u,
            });
        }
        Ok(Self {
            total_units,
            enabled_units,
            uncore_fraction: u,
        })
    }

    /// Number of SMs that may be disabled while staying sellable.
    pub fn max_disabled(&self) -> u32 {
        self.total_units - self.enabled_units
    }

    /// Probability that a die with mean defect count `lambda = A·D0` is
    /// sellable under this policy.
    ///
    /// Uses Poisson thinning: uncore hits are Poisson(`λ·u`) — sellable
    /// requires zero — and SM hits are an independent Poisson(`λ·(1−u)`)
    /// stream whose distinct-unit occupancy must not exceed
    /// [`Self::max_disabled`].
    pub fn sellable_probability(&self, lambda: f64) -> f64 {
        let lambda = lambda.max(0.0);
        let lam_uncore = lambda * self.uncore_fraction;
        let lam_sm = lambda * (1.0 - self.uncore_fraction);
        let p_uncore_clean = (-lam_uncore).exp();
        // Truncate the Poisson sum where the tail is negligible.
        let n_max = poisson_truncation_point(lam_sm);
        let mut p_sm_ok = 0.0;
        let mut pois = (-lam_sm).exp(); // P(N = 0).
        for n in 0..=n_max {
            if n > 0 {
                pois *= lam_sm / n as f64;
            }
            p_sm_ok += pois * self.occupancy_at_most(n, self.max_disabled());
            if pois < 1e-15 && n as f64 > lam_sm {
                break;
            }
        }
        (p_uncore_clean * p_sm_ok).clamp(0.0, 1.0)
    }

    /// P(distinct occupied units ≤ k) after throwing `n` defects uniformly
    /// at `total_units` units.
    ///
    /// Dynamic program over the occupied-count distribution: a new defect
    /// lands on an already-damaged SM with probability `j/m`.
    fn occupancy_at_most(&self, n: u32, k: u32) -> f64 {
        let m = self.total_units as usize;
        if n == 0 {
            return 1.0;
        }
        if k == 0 {
            return 0.0; // n >= 1 defects always occupy at least one unit.
        }
        // dist[j] = P(exactly j units damaged so far); j can never exceed n
        // or m, and anything beyond k+1 can be pooled (it never recovers).
        let cap = (k as usize + 1).min(m);
        let mut dist = vec![0.0f64; cap + 1];
        dist[0] = 1.0;
        for _ in 0..n {
            let mut next = vec![0.0f64; cap + 1];
            for (j, &p) in dist.iter().enumerate() {
                if p == 0.0 {
                    continue;
                }
                if j == cap {
                    next[cap] += p; // Absorbing "too many" state.
                    continue;
                }
                let hit_existing = j as f64 / m as f64;
                next[j] += p * hit_existing;
                next[j + 1] += p * (1.0 - hit_existing);
            }
            dist = next;
        }
        dist[..=(k as usize).min(cap)].iter().sum()
    }

    /// Effective sellable yield for a die of `area_mm2` at `d0_per_cm2`,
    /// i.e. the binning-aware replacement for
    /// [`crate::yield_model::YieldModel::yield_fraction`].
    pub fn sellable_yield(&self, area_mm2: f64, d0_per_cm2: f64) -> f64 {
        self.sellable_probability((area_mm2 / 100.0).max(0.0) * d0_per_cm2.max(0.0))
    }
}

/// A point beyond which the Poisson(λ) tail is below ~1e-12.
fn poisson_truncation_point(lambda: f64) -> u32 {
    (lambda + 12.0 * lambda.sqrt() + 24.0).ceil() as u32
}

/// Binning-aware yield comparison for the paper's H100-vs-Lite example.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BinnedYieldGain {
    /// Sellable yield of the big die with binning.
    pub big_yield: f64,
    /// Sellable yield of the lite die with binning.
    pub lite_yield: f64,
    /// Gain (lite/big) — lower than the perfect-die 1.8× because binning
    /// already rescues many big dies.
    pub gain: f64,
}

/// Computes the binning-aware yield gain of a 1/4-area Lite die.
///
/// `big` describes the large die's policy; the lite die gets
/// `total/4`-rounded policy with the same proportions and the same uncore
/// fraction, and `area/4`.
pub fn binned_split_gain(
    big: &BinningPolicy,
    area_mm2: f64,
    d0_per_cm2: f64,
    n: u32,
) -> Result<BinnedYieldGain> {
    let n = n.max(1);
    let lite = BinningPolicy::new(
        (big.total_units / n).max(1),
        (big.enabled_units / n).max(1),
        big.uncore_fraction,
    )?;
    let big_yield = big.sellable_yield(area_mm2, d0_per_cm2);
    let lite_yield = lite.sellable_yield(area_mm2 / n as f64, d0_per_cm2);
    Ok(BinnedYieldGain {
        big_yield,
        lite_yield,
        gain: lite_yield / big_yield,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yield_model::YieldModel;
    use proptest::prelude::*;

    /// H100-like: 144 SMs, 132 enabled, ~20% uncore.
    fn h100_policy() -> BinningPolicy {
        BinningPolicy::new(144, 132, 0.2).unwrap()
    }

    #[test]
    fn validation() {
        assert!(BinningPolicy::new(0, 0, 0.1).is_err());
        assert!(BinningPolicy::new(10, 11, 0.1).is_err());
        assert!(BinningPolicy::new(10, 10, 1.0).is_err());
        assert!(BinningPolicy::new(10, 10, -0.1).is_err());
        assert!(BinningPolicy::new(10, 10, 0.0).is_ok());
    }

    #[test]
    fn zero_defects_always_sellable() {
        assert!((h100_policy().sellable_probability(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_redundancy_reduces_to_poisson() {
        // enabled == total means any SM hit kills: sellable = exp(-lambda).
        let p = BinningPolicy::new(100, 100, 0.25).unwrap();
        let lambda = 0.8;
        assert!((p.sellable_probability(lambda) - (-lambda).exp()).abs() < 1e-9);
    }

    #[test]
    fn binning_beats_perfect_die_yield() {
        let p = h100_policy();
        let lambda = 8.14 * 0.1; // H100 area x typical D0.
        let binned = p.sellable_probability(lambda);
        let perfect = (-lambda).exp();
        assert!(binned > perfect, "binned {binned} <= perfect {perfect}");
        // With 12 spare SMs the binned yield should be dramatically better.
        assert!(binned > 0.7, "binned = {binned}");
    }

    #[test]
    fn binned_gain_below_unbinned_gain() {
        // Binning rescues the big die more, so the lite/big gain drops
        // below the perfect-die 1.8x. This is the honest version of the
        // paper's claim.
        let g = binned_split_gain(&h100_policy(), 814.0, 0.1, 4).unwrap();
        let unbinned = YieldModel::Poisson.split_yield_gain(814.0, 0.1, 4);
        assert!(g.gain > 1.0, "gain = {}", g.gain);
        assert!(
            g.gain < unbinned,
            "binned {} vs unbinned {unbinned}",
            g.gain
        );
    }

    #[test]
    fn occupancy_exact_small_case() {
        // 2 defects on 2 units: P(1 distinct) = 1/2, so P(<=1) = 0.5.
        let p = BinningPolicy::new(2, 1, 0.0).unwrap();
        assert!((p.occupancy_at_most(2, 1) - 0.5).abs() < 1e-12);
        // 3 defects on 2 units: P(<=1) = 2/8 = 0.25.
        assert!((p.occupancy_at_most(3, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn occupancy_all_units_allowed_is_certain() {
        let p = BinningPolicy::new(16, 1, 0.0).unwrap();
        assert!((p.occupancy_at_most(40, 15) - p.occupancy_at_most(40, 15)).abs() < 1e-12);
        // k = m means any outcome is fine... here max_disabled = 15 < 16,
        // but throwing 1 defect with k=15 is certain.
        assert!((p.occupancy_at_most(1, 15) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncore_fraction_lowers_yield() {
        let lean = BinningPolicy::new(144, 132, 0.05).unwrap();
        let fat = BinningPolicy::new(144, 132, 0.5).unwrap();
        let lambda = 1.0;
        assert!(lean.sellable_probability(lambda) > fat.sellable_probability(lambda));
    }

    proptest! {
        #[test]
        fn sellable_probability_in_unit_interval(
            total in 4u32..200,
            spare in 0u32..16,
            uncore in 0.0..0.9f64,
            lambda in 0.0..10.0f64,
        ) {
            let enabled = total.saturating_sub(spare).max(1);
            let p = BinningPolicy::new(total, enabled, uncore).unwrap();
            let y = p.sellable_probability(lambda);
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn more_spares_never_hurt(
            total in 8u32..160,
            lambda in 0.0..6.0f64,
        ) {
            let few = BinningPolicy::new(total, total - 1, 0.2).unwrap();
            let many = BinningPolicy::new(total, total - 4, 0.2).unwrap();
            prop_assert!(
                many.sellable_probability(lambda) >= few.sellable_probability(lambda) - 1e-12
            );
        }

        #[test]
        fn sellable_monotone_in_lambda(
            l1 in 0.0..5.0f64,
            dl in 0.01..5.0f64,
        ) {
            let p = BinningPolicy::new(144, 132, 0.2).unwrap();
            prop_assert!(
                p.sellable_probability(l1 + dl) <= p.sellable_probability(l1) + 1e-12
            );
        }
    }
}

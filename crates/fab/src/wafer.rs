//! Wafer geometry and dies-per-wafer computation.
//!
//! Two estimators are provided:
//!
//! - [`Wafer::gross_dies_analytic`] — the classic closed-form approximation
//!   used by most die-per-wafer calculators,
//!   `DPW = π·r²/S − π·d/√(2·S)` with `S` the die area including scribe.
//! - [`Wafer::gross_dies`] — an exact rectangular grid placement that counts
//!   dies whose four corners all fall inside the usable radius. This is what
//!   a real shot map does, and it is also the basis for the radial yield
//!   model in [`crate::yield_model`], which needs per-die positions.

use crate::{check_non_negative, check_positive, FabError, Result};

/// Rectangular die geometry, in millimetres.
///
/// The scribe lane (kerf) is the sawing allowance added on each side of the
/// die; it consumes wafer area but is not part of the sold die.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DieGeometry {
    /// Die width in mm (excluding scribe).
    pub width_mm: f64,
    /// Die height in mm (excluding scribe).
    pub height_mm: f64,
    /// Scribe lane width in mm, applied between adjacent dies.
    pub scribe_mm: f64,
}

impl DieGeometry {
    /// Creates a die geometry, validating that all dimensions are positive
    /// (scribe may be zero).
    ///
    /// # Examples
    ///
    /// ```
    /// use litegpu_fab::wafer::DieGeometry;
    /// let die = DieGeometry::new(28.0, 29.0, 0.1).unwrap();
    /// assert!((die.area_mm2() - 812.0).abs() < 1e-9);
    /// ```
    pub fn new(width_mm: f64, height_mm: f64, scribe_mm: f64) -> Result<Self> {
        Ok(Self {
            width_mm: check_positive("die width_mm", width_mm)?,
            height_mm: check_positive("die height_mm", height_mm)?,
            scribe_mm: check_non_negative("die scribe_mm", scribe_mm)?,
        })
    }

    /// Creates a square die with the given area in mm².
    ///
    /// This is the convention used throughout the Lite-GPU paper, which
    /// reasons about dies purely by area (e.g. "1/4th of an H100-like die").
    pub fn square(area_mm2: f64) -> Result<Self> {
        let area = check_positive("die area_mm2", area_mm2)?;
        let side = area.sqrt();
        Self::new(side, side, DEFAULT_SCRIBE_MM)
    }

    /// Creates a rectangular die with the given area and aspect ratio
    /// (width / height).
    pub fn with_aspect(area_mm2: f64, aspect: f64) -> Result<Self> {
        let area = check_positive("die area_mm2", area_mm2)?;
        let aspect = check_positive("die aspect", aspect)?;
        let height = (area / aspect).sqrt();
        Self::new(height * aspect, height, DEFAULT_SCRIBE_MM)
    }

    /// Die area in mm² (excluding scribe).
    pub fn area_mm2(&self) -> f64 {
        self.width_mm * self.height_mm
    }

    /// Die perimeter in mm — the "shoreline" that bounds escape bandwidth.
    pub fn perimeter_mm(&self) -> f64 {
        2.0 * (self.width_mm + self.height_mm)
    }

    /// Footprint on the wafer including the scribe lane, in mm².
    pub fn footprint_mm2(&self) -> f64 {
        (self.width_mm + self.scribe_mm) * (self.height_mm + self.scribe_mm)
    }

    /// Horizontal pitch (width + scribe) in mm.
    pub fn pitch_x_mm(&self) -> f64 {
        self.width_mm + self.scribe_mm
    }

    /// Vertical pitch (height + scribe) in mm.
    pub fn pitch_y_mm(&self) -> f64 {
        self.height_mm + self.scribe_mm
    }

    /// Returns a die with `1/n` of this die's area, preserving aspect ratio
    /// and scribe width.
    ///
    /// This is the paper's Lite-GPU construction: a "Lite-H100" is
    /// `h100_die.shrink(4)`.
    pub fn shrink(&self, n: u32) -> Result<Self> {
        if n == 0 {
            return Err(FabError::InvalidParameter {
                name: "shrink factor",
                value: 0.0,
            });
        }
        let s = (n as f64).sqrt();
        Self::new(self.width_mm / s, self.height_mm / s, self.scribe_mm)
    }
}

/// Default scribe lane width in mm (a typical modern kerf allowance).
pub const DEFAULT_SCRIBE_MM: f64 = 0.1;

/// Position of a die site on a wafer, used by radial yield models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieSite {
    /// X coordinate of the die centre relative to the wafer centre, mm.
    pub center_x_mm: f64,
    /// Y coordinate of the die centre relative to the wafer centre, mm.
    pub center_y_mm: f64,
    /// Radial distance of the die centre from the wafer centre, mm.
    pub radius_mm: f64,
}

/// A silicon wafer with an edge-exclusion zone.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Wafer {
    /// Wafer diameter in mm (300 for the standard leading-edge wafer).
    pub diameter_mm: f64,
    /// Edge exclusion in mm: the outer ring unusable for product dies.
    pub edge_exclusion_mm: f64,
}

impl Wafer {
    /// Standard 300 mm wafer with a 3 mm edge exclusion.
    pub fn w300() -> Self {
        Self {
            diameter_mm: 300.0,
            edge_exclusion_mm: 3.0,
        }
    }

    /// Creates a wafer with explicit diameter and edge exclusion.
    pub fn new(diameter_mm: f64, edge_exclusion_mm: f64) -> Result<Self> {
        let d = check_positive("wafer diameter_mm", diameter_mm)?;
        let e = check_non_negative("wafer edge_exclusion_mm", edge_exclusion_mm)?;
        if 2.0 * e >= d {
            return Err(FabError::InvalidParameter {
                name: "wafer edge_exclusion_mm",
                value: e,
            });
        }
        Ok(Self {
            diameter_mm: d,
            edge_exclusion_mm: e,
        })
    }

    /// Usable radius (diameter/2 minus edge exclusion), mm.
    pub fn usable_radius_mm(&self) -> f64 {
        self.diameter_mm / 2.0 - self.edge_exclusion_mm
    }

    /// Usable area in mm².
    pub fn usable_area_mm2(&self) -> f64 {
        let r = self.usable_radius_mm();
        core::f64::consts::PI * r * r
    }

    /// Classic analytic dies-per-wafer approximation.
    ///
    /// `DPW = π·r²/S − π·(2r)/√(2·S)`, where `S` is the die footprint
    /// including scribe. The second term approximates edge losses.
    ///
    /// # Examples
    ///
    /// ```
    /// use litegpu_fab::wafer::{DieGeometry, Wafer};
    /// let wafer = Wafer::w300();
    /// let h100 = DieGeometry::square(814.0).unwrap();
    /// let dpw = wafer.gross_dies_analytic(&h100).unwrap();
    /// assert!(dpw > 55.0 && dpw < 75.0, "H100-class dies per 300mm wafer, got {dpw}");
    /// ```
    pub fn gross_dies_analytic(&self, die: &DieGeometry) -> Result<f64> {
        let s = die.footprint_mm2();
        let r = self.usable_radius_mm();
        if die.pitch_x_mm() > 2.0 * r || die.pitch_y_mm() > 2.0 * r {
            return Err(FabError::DieTooLarge {
                die_area_mm2: die.area_mm2(),
                usable_diameter_mm: 2.0 * r,
            });
        }
        let area_term = core::f64::consts::PI * r * r / s;
        let edge_term = core::f64::consts::PI * (2.0 * r) / (2.0 * s).sqrt();
        Ok((area_term - edge_term).max(0.0))
    }

    /// Exact gross die count by rectangular grid placement.
    ///
    /// Dies are placed on a regular grid centred on the wafer; a die counts
    /// if all four corners fall within the usable radius. This matches how
    /// shot maps are laid out in practice and agrees with the analytic
    /// approximation to within a few percent for realistic die sizes.
    pub fn gross_dies(&self, die: &DieGeometry) -> Result<usize> {
        Ok(self.die_sites(die)?.len())
    }

    /// Enumerates all die sites that fit on the wafer, with their centre
    /// positions (for radial yield models).
    pub fn die_sites(&self, die: &DieGeometry) -> Result<Vec<DieSite>> {
        let r = self.usable_radius_mm();
        let px = die.pitch_x_mm();
        let py = die.pitch_y_mm();
        if px > 2.0 * r || py > 2.0 * r {
            return Err(FabError::DieTooLarge {
                die_area_mm2: die.area_mm2(),
                usable_diameter_mm: 2.0 * r,
            });
        }
        let half_w = die.width_mm / 2.0;
        let half_h = die.height_mm / 2.0;
        let nx = (2.0 * r / px).ceil() as i64 + 2;
        let ny = (2.0 * r / py).ceil() as i64 + 2;
        let mut sites = Vec::new();
        // The grid is offset by half a pitch so no die straddles the centre;
        // this is the common "even" shot-map layout.
        for iy in -ny..=ny {
            for ix in -nx..=nx {
                let cx = (ix as f64 + 0.5) * px;
                let cy = (iy as f64 + 0.5) * py;
                let corners = [
                    (cx - half_w, cy - half_h),
                    (cx + half_w, cy - half_h),
                    (cx - half_w, cy + half_h),
                    (cx + half_w, cy + half_h),
                ];
                if corners.iter().all(|(x, y)| (x * x + y * y).sqrt() <= r) {
                    sites.push(DieSite {
                        center_x_mm: cx,
                        center_y_mm: cy,
                        radius_mm: (cx * cx + cy * cy).sqrt(),
                    });
                }
            }
        }
        Ok(sites)
    }
}

impl Default for Wafer {
    fn default() -> Self {
        Self::w300()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_die_geometry() {
        let d = DieGeometry::square(100.0).unwrap();
        assert!((d.width_mm - 10.0).abs() < 1e-12);
        assert!((d.area_mm2() - 100.0).abs() < 1e-12);
        assert!((d.perimeter_mm() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn aspect_die_geometry() {
        let d = DieGeometry::with_aspect(200.0, 2.0).unwrap();
        assert!((d.area_mm2() - 200.0).abs() < 1e-9);
        assert!((d.width_mm / d.height_mm - 2.0).abs() < 1e-9);
    }

    #[test]
    fn shrink_preserves_aspect_and_quarters_area() {
        let d = DieGeometry::with_aspect(814.0, 1.2).unwrap();
        let s = d.shrink(4).unwrap();
        assert!((s.area_mm2() - 814.0 / 4.0).abs() < 1e-9);
        assert!((s.width_mm / s.height_mm - 1.2).abs() < 1e-9);
        assert!(d.shrink(0).is_err());
    }

    #[test]
    fn shrink_by_four_doubles_total_perimeter() {
        // The paper's shoreline argument: 4 dies of 1/4 area have 2x the
        // total perimeter of the original die.
        let d = DieGeometry::square(814.0).unwrap();
        let s = d.shrink(4).unwrap();
        let ratio = 4.0 * s.perimeter_mm() / d.perimeter_mm();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn wafer_validation() {
        assert!(Wafer::new(300.0, 3.0).is_ok());
        assert!(Wafer::new(0.0, 3.0).is_err());
        assert!(Wafer::new(300.0, -1.0).is_err());
        assert!(Wafer::new(300.0, 150.0).is_err());
    }

    #[test]
    fn usable_area() {
        let w = Wafer::w300();
        assert!((w.usable_radius_mm() - 147.0).abs() < 1e-12);
        assert!(w.usable_area_mm2() > 67_000.0 && w.usable_area_mm2() < 68_000.0);
    }

    #[test]
    fn analytic_close_to_exact_for_h100_class() {
        let w = Wafer::w300();
        let die = DieGeometry::square(814.0).unwrap();
        let analytic = w.gross_dies_analytic(&die).unwrap();
        let exact = w.gross_dies(&die).unwrap() as f64;
        let rel = (analytic - exact).abs() / exact;
        assert!(rel < 0.15, "analytic {analytic} vs exact {exact}");
    }

    #[test]
    fn smaller_dies_give_superlinear_count() {
        // Quartering the die more than quadruples the die count because
        // edge losses shrink.
        let w = Wafer::w300();
        let big = DieGeometry::square(814.0).unwrap();
        let small = big.shrink(4).unwrap();
        let n_big = w.gross_dies(&big).unwrap();
        let n_small = w.gross_dies(&small).unwrap();
        assert!(
            n_small > 4 * n_big,
            "expected >4x dies, got {n_small} vs {n_big}"
        );
    }

    #[test]
    fn die_too_large_is_rejected() {
        let w = Wafer::w300();
        let die = DieGeometry::new(400.0, 400.0, 0.1).unwrap();
        assert!(matches!(
            w.gross_dies(&die),
            Err(FabError::DieTooLarge { .. })
        ));
        assert!(w.gross_dies_analytic(&die).is_err());
    }

    #[test]
    fn sites_lie_within_usable_radius() {
        let w = Wafer::w300();
        let die = DieGeometry::square(100.0).unwrap();
        for site in w.die_sites(&die).unwrap() {
            assert!(site.radius_mm <= w.usable_radius_mm());
        }
    }

    #[test]
    fn scribe_reduces_die_count() {
        let w = Wafer::w300();
        let no_scribe = DieGeometry::new(10.0, 10.0, 0.0).unwrap();
        let wide_scribe = DieGeometry::new(10.0, 10.0, 1.0).unwrap();
        assert!(w.gross_dies(&no_scribe).unwrap() > w.gross_dies(&wide_scribe).unwrap());
    }
}

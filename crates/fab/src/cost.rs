//! Manufacturing cost models: wafer → good die → packaged GPU.
//!
//! The Lite-GPU paper argues (§2) that quartering the compute die roughly
//! halves compute-silicon manufacturing cost (yield gain × reduced edge
//! waste), and that simpler packages (no CoWoS-class interposer, air
//! cooling) compound the saving. This module makes each of those terms an
//! explicit, parameterized model with public-estimate defaults, so the
//! claim can be recomputed and stress-tested.

use crate::wafer::{DieGeometry, Wafer};
use crate::yield_model::YieldModel;
use crate::{check_non_negative, check_positive, Result};

/// Leading-edge logic process nodes with public wafer-price estimates
/// (USD per 300 mm wafer; CSET/industry-press figures, order-of-magnitude
/// correct which is all the comparison needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ProcessNode {
    /// 7 nm-class node.
    N7,
    /// 5 nm-class node (H100's N4 is a derivative; use N5 pricing class).
    N5,
    /// 4 nm-class node.
    N4,
    /// 3 nm-class node.
    N3,
}

impl ProcessNode {
    /// Estimated wafer price in USD.
    pub fn wafer_cost_usd(&self) -> f64 {
        match self {
            ProcessNode::N7 => 9_350.0,
            ProcessNode::N5 => 13_400.0,
            ProcessNode::N4 => 14_500.0,
            ProcessNode::N3 => 18_000.0,
        }
    }

    /// A representative defect density for a mature process of this class,
    /// in defects/cm².
    pub fn mature_defect_density(&self) -> f64 {
        match self {
            ProcessNode::N7 => 0.09,
            ProcessNode::N5 => 0.10,
            ProcessNode::N4 => 0.10,
            ProcessNode::N3 => 0.12,
        }
    }
}

/// Cost model for bare dies of a given geometry on a given wafer/process.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DieCostModel {
    /// Wafer geometry.
    pub wafer: Wafer,
    /// Die geometry.
    pub die: DieGeometry,
    /// Process node (sets wafer cost).
    pub node: ProcessNode,
    /// Yield model used to predict good dies.
    pub yield_model: YieldModel,
    /// Defect density in defects/cm².
    pub defect_density: f64,
}

impl DieCostModel {
    /// Creates a die cost model with the node's mature defect density.
    pub fn new(die: DieGeometry, node: ProcessNode, yield_model: YieldModel) -> Self {
        Self {
            wafer: Wafer::w300(),
            die,
            node,
            yield_model,
            defect_density: node.mature_defect_density(),
        }
    }

    /// Overrides the defect density (defects/cm²).
    pub fn with_defect_density(mut self, d0: f64) -> Result<Self> {
        self.defect_density = check_non_negative("defect_density", d0)?;
        Ok(self)
    }

    /// Gross dies per wafer (exact grid placement).
    pub fn gross_dies(&self) -> Result<usize> {
        self.wafer.gross_dies(&self.die)
    }

    /// Die yield fraction under the configured model.
    pub fn yield_fraction(&self) -> f64 {
        self.yield_model
            .yield_fraction(self.die.area_mm2(), self.defect_density)
    }

    /// Expected good dies per wafer.
    pub fn good_dies_per_wafer(&self) -> Result<f64> {
        Ok(self.gross_dies()? as f64 * self.yield_fraction())
    }

    /// Cost per *good* die in USD: wafer cost amortized over good dies.
    ///
    /// # Examples
    ///
    /// ```
    /// use litegpu_fab::cost::{DieCostModel, ProcessNode};
    /// use litegpu_fab::wafer::DieGeometry;
    /// use litegpu_fab::yield_model::YieldModel;
    ///
    /// let h100 = DieCostModel::new(
    ///     DieGeometry::square(814.0).unwrap(),
    ///     ProcessNode::N4,
    ///     YieldModel::Poisson,
    /// );
    /// let c = h100.cost_per_good_die().unwrap();
    /// assert!(c > 300.0 && c < 800.0, "H100-class die cost, got {c}");
    /// ```
    pub fn cost_per_good_die(&self) -> Result<f64> {
        let good = self.good_dies_per_wafer()?;
        check_positive("good dies per wafer", good)?;
        Ok(self.node.wafer_cost_usd() / good)
    }

    /// Silicon cost per mm² of *good* silicon, a size-independence check:
    /// for small dies this approaches `wafer_cost / usable_area`.
    pub fn cost_per_good_mm2(&self) -> Result<f64> {
        Ok(self.cost_per_good_die()? / self.die.area_mm2())
    }
}

/// Package class, determining interposer and assembly costs.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum PackageClass {
    /// Conventional organic flip-chip package (what a Lite-GPU would use).
    FlipChip,
    /// 2.5D silicon-interposer package (CoWoS-class; what H100 uses).
    SiliconInterposer {
        /// Interposer area in mm² (must cover dies + HBM stacks).
        interposer_area_mm2: f64,
    },
}

/// Cost model for a complete packaged GPU: compute die(s) + HBM + package.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PackageCostModel {
    /// Cost model for one compute die.
    pub die_cost: DieCostModel,
    /// Number of compute dies in the package (2 for Blackwell-class).
    pub compute_dies: u32,
    /// Package class.
    pub class: PackageClass,
    /// Number of HBM stacks.
    pub hbm_stacks: u32,
    /// Cost per HBM stack in USD.
    pub hbm_stack_cost_usd: f64,
    /// Fixed assembly + substrate + test cost in USD.
    pub assembly_cost_usd: f64,
    /// Probability the assembly step succeeds (scrapping all components on
    /// failure — the multi-die risk the paper calls out).
    pub assembly_yield: f64,
}

/// Cost per mm² of silicon interposer (USD), a public CoWoS-class estimate.
pub const INTERPOSER_COST_PER_MM2: f64 = 0.07;

impl PackageCostModel {
    /// Creates a package model with validation.
    pub fn new(
        die_cost: DieCostModel,
        compute_dies: u32,
        class: PackageClass,
        hbm_stacks: u32,
        hbm_stack_cost_usd: f64,
        assembly_cost_usd: f64,
        assembly_yield: f64,
    ) -> Result<Self> {
        check_non_negative("hbm_stack_cost_usd", hbm_stack_cost_usd)?;
        check_non_negative("assembly_cost_usd", assembly_cost_usd)?;
        check_positive("assembly_yield", assembly_yield)?;
        if assembly_yield > 1.0 {
            return Err(crate::FabError::InvalidParameter {
                name: "assembly_yield",
                value: assembly_yield,
            });
        }
        Ok(Self {
            die_cost,
            compute_dies: compute_dies.max(1),
            class,
            hbm_stacks,
            hbm_stack_cost_usd,
            assembly_cost_usd,
            assembly_yield,
        })
    }

    /// Interposer cost in USD (zero for flip-chip packages).
    pub fn interposer_cost(&self) -> f64 {
        match self.class {
            PackageClass::FlipChip => 0.0,
            PackageClass::SiliconInterposer {
                interposer_area_mm2,
            } => interposer_area_mm2 * INTERPOSER_COST_PER_MM2,
        }
    }

    /// Bill-of-materials cost of one assembly attempt, in USD.
    pub fn bom_cost(&self) -> Result<f64> {
        let die = self.die_cost.cost_per_good_die()? * self.compute_dies as f64;
        let hbm = self.hbm_stacks as f64 * self.hbm_stack_cost_usd;
        Ok(die + hbm + self.interposer_cost() + self.assembly_cost_usd)
    }

    /// Expected cost per *shipped* package: the BoM is amortized over the
    /// assembly yield (failed assemblies scrap their components).
    pub fn cost_per_shipped_package(&self) -> Result<f64> {
        Ok(self.bom_cost()? / self.assembly_yield)
    }
}

/// Side-by-side manufacturing comparison between a "big GPU" package and
/// the `n` Lite-GPU packages that replace it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ManufacturingComparison {
    /// Number of Lite-GPUs replacing one big GPU.
    pub replacement_ratio: u32,
    /// Big-GPU die yield fraction.
    pub big_yield: f64,
    /// Lite-GPU die yield fraction.
    pub lite_yield: f64,
    /// Yield gain (lite / big) — paper expects ≈1.8 at 1/4 area.
    pub yield_gain: f64,
    /// Cost of one big compute die (USD).
    pub big_die_cost: f64,
    /// Cost of `n` lite compute dies (USD).
    pub lite_dies_cost: f64,
    /// Compute-silicon saving fraction — paper expects ≈0.5 at 1/4 area.
    pub silicon_saving: f64,
    /// Cost of one big packaged GPU (USD).
    pub big_package_cost: f64,
    /// Cost of `n` lite packaged GPUs (USD).
    pub lite_packages_cost: f64,
    /// Package-level saving fraction.
    pub package_saving: f64,
}

impl ManufacturingComparison {
    /// Compares a big-GPU package against `n` equal-silicon Lite packages.
    pub fn compare(big: &PackageCostModel, lite: &PackageCostModel, n: u32) -> Result<Self> {
        let n = n.max(1);
        let big_yield = big.die_cost.yield_fraction();
        let lite_yield = lite.die_cost.yield_fraction();
        let big_die_cost = big.die_cost.cost_per_good_die()?;
        let lite_dies_cost = lite.die_cost.cost_per_good_die()? * n as f64;
        let big_package_cost = big.cost_per_shipped_package()?;
        let lite_packages_cost = lite.cost_per_shipped_package()? * n as f64;
        Ok(Self {
            replacement_ratio: n,
            big_yield,
            lite_yield,
            yield_gain: lite_yield / big_yield,
            big_die_cost,
            lite_dies_cost,
            silicon_saving: 1.0 - lite_dies_cost / big_die_cost,
            big_package_cost,
            lite_packages_cost,
            package_saving: 1.0 - lite_packages_cost / big_package_cost,
        })
    }
}

/// Builds the paper's default H100-vs-4×Lite comparison.
///
/// H100: ~814 mm² die, CoWoS-class interposer, 5 HBM stacks (one of the six
/// sites is a dummy), liquid-adjacent assembly cost. Lite-H100: 1/4 die, one
/// quarter of the HBM, flip-chip class packaging with co-packaged optics
/// assumed part of assembly cost.
pub fn h100_vs_lite_comparison() -> Result<ManufacturingComparison> {
    let (big, lite) = h100_and_lite_package_models()?;
    ManufacturingComparison::compare(&big, &lite, 4)
}

/// The default H100 and Lite-H100 package cost models used by the paper
/// reproduction (public-estimate parameters).
pub fn h100_and_lite_package_models() -> Result<(PackageCostModel, PackageCostModel)> {
    Ok((package_model_for_divisor(1)?, package_model_for_divisor(4)?))
}

/// The package cost model for an H100-class die shrunk by `divisor`.
///
/// `divisor == 1` is the H100 package itself (CoWoS-class interposer,
/// five HBM stacks, liquid-adjacent assembly). Larger divisors follow the
/// Lite-GPU recipe — flip-chip packaging, two down-sized HBM stacks, and
/// assembly cost/risk shrinking with the die — on a continuous family
/// that reproduces the paper's Lite-H100 parameters exactly at
/// `divisor == 4`. This is the capex-side knob the TCO design sweep
/// turns: one function prices every die size on the same assumptions.
pub fn package_model_for_divisor(divisor: u32) -> Result<PackageCostModel> {
    if divisor == 0 {
        return Err(crate::FabError::InvalidParameter {
            name: "divisor",
            value: 0.0,
        });
    }
    let h100_die = DieGeometry::with_aspect(814.0, 1.1)?;
    if divisor == 1 {
        return PackageCostModel::new(
            DieCostModel::new(h100_die, ProcessNode::N4, YieldModel::Poisson),
            1,
            PackageClass::SiliconInterposer {
                interposer_area_mm2: 2500.0,
            },
            5,
            120.0,
            150.0,
            0.95,
        );
    }
    let d = divisor as f64;
    let die = h100_die.shrink(divisor)?;
    PackageCostModel::new(
        DieCostModel::new(die, ProcessNode::N4, YieldModel::Poisson),
        1,
        PackageClass::FlipChip,
        2, // Two down-sized stacks keep capacity at 1/divisor with shoreline to spare.
        120.0 / d,
        180.0 / d,
        1.0 - 0.04 / d,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn h100_die_model() -> DieCostModel {
        DieCostModel::new(
            DieGeometry::square(814.0).unwrap(),
            ProcessNode::N4,
            YieldModel::Poisson,
        )
    }

    #[test]
    fn node_costs_increase_with_density() {
        assert!(ProcessNode::N7.wafer_cost_usd() < ProcessNode::N5.wafer_cost_usd());
        assert!(ProcessNode::N5.wafer_cost_usd() < ProcessNode::N3.wafer_cost_usd());
    }

    #[test]
    fn good_dies_below_gross_dies() {
        let m = h100_die_model();
        assert!(m.good_dies_per_wafer().unwrap() < m.gross_dies().unwrap() as f64);
    }

    #[test]
    fn quartering_roughly_halves_silicon_cost() {
        // Paper §2: "almost 50% reduction in manufacturing cost".
        let cmp = h100_vs_lite_comparison().unwrap();
        assert!(
            cmp.silicon_saving > 0.40 && cmp.silicon_saving < 0.60,
            "silicon saving = {}",
            cmp.silicon_saving
        );
        assert!(
            (cmp.yield_gain - 1.8).abs() < 0.1,
            "yield gain = {}",
            cmp.yield_gain
        );
    }

    #[test]
    fn package_level_saving_is_positive() {
        let cmp = h100_vs_lite_comparison().unwrap();
        assert!(
            cmp.package_saving > 0.0,
            "package saving = {}",
            cmp.package_saving
        );
    }

    #[test]
    fn interposer_cost_only_for_cowos() {
        let m = h100_die_model();
        let flip =
            PackageCostModel::new(m, 1, PackageClass::FlipChip, 2, 30.0, 40.0, 0.99).unwrap();
        assert_eq!(flip.interposer_cost(), 0.0);
        let cowos = PackageCostModel::new(
            m,
            1,
            PackageClass::SiliconInterposer {
                interposer_area_mm2: 1000.0,
            },
            2,
            30.0,
            40.0,
            0.99,
        )
        .unwrap();
        assert!((cowos.interposer_cost() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn assembly_yield_amortizes_bom() {
        let m = h100_die_model();
        let p = PackageCostModel::new(m, 1, PackageClass::FlipChip, 0, 0.0, 100.0, 0.5).unwrap();
        let bom = p.bom_cost().unwrap();
        assert!((p.cost_per_shipped_package().unwrap() - 2.0 * bom).abs() < 1e-9);
    }

    #[test]
    fn invalid_assembly_yield_rejected() {
        let m = h100_die_model();
        assert!(PackageCostModel::new(m, 1, PackageClass::FlipChip, 0, 0.0, 0.0, 0.0).is_err());
        assert!(PackageCostModel::new(m, 1, PackageClass::FlipChip, 0, 0.0, 0.0, 1.5).is_err());
    }

    #[test]
    fn divisor_family_reproduces_the_paper_endpoints() {
        // The generalized family must hit the pinned H100 and Lite-H100
        // models exactly, so the TCO sweep prices the same packages as
        // the §2 manufacturing comparison.
        let (big, lite) = h100_and_lite_package_models().unwrap();
        assert_eq!(big, package_model_for_divisor(1).unwrap());
        assert_eq!(lite, package_model_for_divisor(4).unwrap());
        assert_eq!(lite.hbm_stack_cost_usd, 30.0);
        assert_eq!(lite.assembly_cost_usd, 45.0);
        assert_eq!(lite.assembly_yield, 0.99);
        assert!(package_model_for_divisor(0).is_err());
    }

    #[test]
    fn divisor_family_cheapens_packages_monotonically() {
        // Per-package cost must fall as the die shrinks: yield gain plus
        // smaller HBM/assembly shares. (Total fleet silicon cost is a
        // different question — that's what the TCO optimizer weighs.)
        let costs: Vec<f64> = [1u32, 2, 4, 8]
            .iter()
            .map(|&d| {
                package_model_for_divisor(d)
                    .unwrap()
                    .cost_per_shipped_package()
                    .unwrap()
            })
            .collect();
        for w in costs.windows(2) {
            assert!(
                w[0] > w[1],
                "package cost must shrink with the die: {costs:?}"
            );
        }
    }

    #[test]
    fn cost_per_good_mm2_smaller_for_small_dies() {
        let big = h100_die_model();
        let small = DieCostModel::new(
            DieGeometry::square(814.0 / 4.0).unwrap(),
            ProcessNode::N4,
            YieldModel::Poisson,
        );
        assert!(small.cost_per_good_mm2().unwrap() < big.cost_per_good_mm2().unwrap());
    }

    #[test]
    fn defect_density_override() {
        let m = h100_die_model().with_defect_density(0.0).unwrap();
        assert!((m.yield_fraction() - 1.0).abs() < 1e-12);
        assert!(h100_die_model().with_defect_density(-0.1).is_err());
    }

    proptest! {
        #[test]
        fn silicon_saving_positive_for_any_reasonable_d0(d0 in 0.02..0.5f64) {
            let h100_die = DieGeometry::with_aspect(814.0, 1.1).unwrap();
            let lite_die = h100_die.shrink(4).unwrap();
            let big = DieCostModel::new(h100_die, ProcessNode::N4, YieldModel::Poisson)
                .with_defect_density(d0).unwrap();
            let lite = DieCostModel::new(lite_die, ProcessNode::N4, YieldModel::Poisson)
                .with_defect_density(d0).unwrap();
            let saving =
                1.0 - 4.0 * lite.cost_per_good_die().unwrap() / big.cost_per_good_die().unwrap();
            prop_assert!(saving > 0.0, "saving = {saving} at d0 = {d0}");
        }

        #[test]
        fn bigger_dies_never_cheaper_per_mm2(
            area in 50.0..1200.0f64,
            growth in 1.05..4.0f64,
            d0 in 0.02..0.5f64,
        ) {
            // Uses the smooth analytic dies-per-wafer estimator: the exact
            // grid count has discrete packing jumps that make per-mm2 cost
            // locally non-monotone (a real effect, tested elsewhere).
            let wafer = Wafer::w300();
            let cost_per_mm2 = |a: f64| {
                let die = DieGeometry::square(a).unwrap();
                let dpw = wafer.gross_dies_analytic(&die).unwrap();
                let y = YieldModel::Murphy.yield_fraction(a, d0);
                ProcessNode::N5.wafer_cost_usd() / (dpw * y) / a
            };
            prop_assert!(cost_per_mm2(area) <= cost_per_mm2(area * growth) * 1.001);
        }
    }
}

//! Die yield models.
//!
//! All classical defect-limited yield models express yield as a function of
//! die area `A` and defect density `D0`. The Lite-GPU paper's §2 claim
//! ("yield rate can be increased by 1.8× when a H100-like compute die area
//! is reduced by 1/4th") is what the Poisson model predicts at
//! `D0 ≈ 0.1 /cm²` — and the other models bracket it. The
//! [`RadialDefectProfile`] implements the radially degrading defect density
//! of Teets (1996), which penalises large dies slightly more because they
//! are forced to occupy more of the dirty wafer edge.

use crate::wafer::{DieGeometry, Wafer};
use crate::{check_non_negative, check_positive, Result};

/// A defect-limited die yield model.
///
/// `yield_fraction(area, d0)` returns the fraction of dies free of killer
/// defects, in `(0, 1]`. `area` is in mm², `d0` in defects/cm² (the industry
/// convention), so internally `A·D0` uses area converted to cm².
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum YieldModel {
    /// Poisson model: `Y = exp(−A·D0)`. Assumes independent point defects;
    /// pessimistic for large dies.
    Poisson,
    /// Murphy's model: `Y = ((1 − exp(−A·D0)) / (A·D0))²`. A Gaussian-ish
    /// compromise widely used in industry calculators.
    Murphy,
    /// Seeds' model: `Y = 1 / (1 + A·D0)`. Optimistic for large dies
    /// (assumes strong defect clustering).
    Seeds,
    /// Bose-Einstein model: `Y = 1 / (1 + A·D0)^n` for `n` critical layers.
    BoseEinstein {
        /// Number of critical mask layers.
        critical_layers: u32,
    },
    /// Negative-binomial model: `Y = (1 + A·D0/α)^(−α)` with clustering
    /// parameter `α` (α→∞ recovers Poisson, α=1 recovers Seeds).
    NegativeBinomial {
        /// Defect clustering parameter, typically 1–5.
        alpha: f64,
    },
}

impl YieldModel {
    /// Yield fraction in `(0, 1]` for a die of `area_mm2` at defect density
    /// `d0_per_cm2`.
    ///
    /// Out-of-domain inputs (non-finite or negative) are clamped to the
    /// nearest meaningful value rather than erroring: yield modeling is used
    /// inside sweeps and optimizers where total functions are much easier to
    /// reason about.
    ///
    /// # Examples
    ///
    /// ```
    /// use litegpu_fab::yield_model::YieldModel;
    /// let y = YieldModel::Poisson.yield_fraction(814.0, 0.1);
    /// assert!((y - 0.443).abs() < 0.005);
    /// ```
    pub fn yield_fraction(&self, area_mm2: f64, d0_per_cm2: f64) -> f64 {
        let area_cm2 = (area_mm2 / 100.0).max(0.0);
        let d0 = d0_per_cm2.max(0.0);
        let ad = area_cm2 * d0;
        let y = match self {
            YieldModel::Poisson => (-ad).exp(),
            YieldModel::Murphy => {
                if ad < 1e-12 {
                    1.0
                } else {
                    let t = (1.0 - (-ad).exp()) / ad;
                    t * t
                }
            }
            YieldModel::Seeds => 1.0 / (1.0 + ad),
            YieldModel::BoseEinstein { critical_layers } => {
                1.0 / (1.0 + ad).powi((*critical_layers).max(1) as i32)
            }
            YieldModel::NegativeBinomial { alpha } => {
                let a = alpha.max(1e-9);
                (1.0 + ad / a).powf(-a)
            }
        };
        y.clamp(0.0, 1.0)
    }

    /// Ratio of small-die yield to big-die yield when the die is split into
    /// `n` equal-area parts.
    ///
    /// This is the quantity behind the paper's "1.8× at 1/4 area" claim.
    pub fn split_yield_gain(&self, area_mm2: f64, d0_per_cm2: f64, n: u32) -> f64 {
        let n = n.max(1) as f64;
        self.yield_fraction(area_mm2 / n, d0_per_cm2) / self.yield_fraction(area_mm2, d0_per_cm2)
    }

    /// All model variants with conventional parameters, for sweep output.
    pub fn standard_suite() -> Vec<(&'static str, YieldModel)> {
        vec![
            ("poisson", YieldModel::Poisson),
            ("murphy", YieldModel::Murphy),
            ("seeds", YieldModel::Seeds),
            (
                "bose-einstein(10)",
                YieldModel::BoseEinstein {
                    critical_layers: 10,
                },
            ),
            (
                "neg-binomial(2)",
                YieldModel::NegativeBinomial { alpha: 2.0 },
            ),
        ]
    }
}

/// Radially varying defect density, after Teets (1996).
///
/// `D(r) = D0 · (1 + (edge_factor − 1) · (r/R)^2)`, with `R` the usable
/// wafer radius. The wafer edge is dirtier than the centre; large dies
/// cannot avoid the edge, so their effective yield degrades faster than the
/// uniform models predict.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RadialDefectProfile {
    /// Defect density at the wafer centre, per cm².
    pub d0_center_per_cm2: f64,
    /// Multiplier on defect density at the usable-radius edge (≥ 1).
    pub edge_factor: f64,
}

impl RadialDefectProfile {
    /// Creates a radial profile; `edge_factor` must be ≥ 1.
    pub fn new(d0_center_per_cm2: f64, edge_factor: f64) -> Result<Self> {
        let d0 = check_non_negative("d0_center_per_cm2", d0_center_per_cm2)?;
        let ef = check_positive("edge_factor", edge_factor)?;
        Ok(Self {
            d0_center_per_cm2: d0,
            edge_factor: ef.max(1.0),
        })
    }

    /// Defect density at radial position `r_mm` on the given wafer.
    pub fn density_at(&self, wafer: &Wafer, r_mm: f64) -> f64 {
        let rel = (r_mm / wafer.usable_radius_mm()).clamp(0.0, 1.0);
        self.d0_center_per_cm2 * (1.0 + (self.edge_factor - 1.0) * rel * rel)
    }

    /// Expected number of *good* dies per wafer under this profile: each die
    /// site is evaluated at its own local defect density with `model`.
    pub fn good_dies_per_wafer(
        &self,
        wafer: &Wafer,
        die: &DieGeometry,
        model: YieldModel,
    ) -> Result<f64> {
        let sites = wafer.die_sites(die)?;
        Ok(sites
            .iter()
            .map(|s| model.yield_fraction(die.area_mm2(), self.density_at(wafer, s.radius_mm)))
            .sum())
    }

    /// Wafer-average yield fraction (good dies / gross dies).
    pub fn average_yield(
        &self,
        wafer: &Wafer,
        die: &DieGeometry,
        model: YieldModel,
    ) -> Result<f64> {
        let sites = wafer.die_sites(die)?;
        if sites.is_empty() {
            return Ok(0.0);
        }
        let good = self.good_dies_per_wafer(wafer, die, model)?;
        Ok(good / sites.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const H100_AREA: f64 = 814.0;

    #[test]
    fn poisson_reproduces_paper_gain() {
        // Paper §2: 1.8x yield when an H100-like die is quartered.
        let gain = YieldModel::Poisson.split_yield_gain(H100_AREA, 0.1, 4);
        assert!((gain - 1.8).abs() < 0.05, "gain = {gain}");
    }

    #[test]
    fn all_models_agree_at_zero_defects() {
        for (_, m) in YieldModel::standard_suite() {
            assert!((m.yield_fraction(H100_AREA, 0.0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn models_are_ordered_for_large_dies() {
        // Poisson is the most pessimistic pure-area model; Seeds the most
        // optimistic of the single-parameter family.
        let p = YieldModel::Poisson.yield_fraction(H100_AREA, 0.2);
        let m = YieldModel::Murphy.yield_fraction(H100_AREA, 0.2);
        let s = YieldModel::Seeds.yield_fraction(H100_AREA, 0.2);
        assert!(p < m && m < s, "p={p} m={m} s={s}");
    }

    #[test]
    fn negative_binomial_limits() {
        // alpha -> infinity recovers Poisson; alpha = 1 recovers Seeds.
        let nb_big = YieldModel::NegativeBinomial { alpha: 1e7 }.yield_fraction(H100_AREA, 0.1);
        let poisson = YieldModel::Poisson.yield_fraction(H100_AREA, 0.1);
        assert!((nb_big - poisson).abs() < 1e-4);
        let nb_one = YieldModel::NegativeBinomial { alpha: 1.0 }.yield_fraction(H100_AREA, 0.1);
        let seeds = YieldModel::Seeds.yield_fraction(H100_AREA, 0.1);
        assert!((nb_one - seeds).abs() < 1e-12);
    }

    #[test]
    fn bose_einstein_single_layer_is_seeds() {
        let be = YieldModel::BoseEinstein { critical_layers: 1 }.yield_fraction(500.0, 0.15);
        let seeds = YieldModel::Seeds.yield_fraction(500.0, 0.15);
        assert!((be - seeds).abs() < 1e-12);
    }

    #[test]
    fn murphy_small_ad_limit_is_one() {
        assert!((YieldModel::Murphy.yield_fraction(1e-9, 1e-9) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn radial_profile_density_grows_with_radius() {
        let w = Wafer::w300();
        let p = RadialDefectProfile::new(0.1, 3.0).unwrap();
        assert!(p.density_at(&w, 0.0) < p.density_at(&w, 100.0));
        assert!((p.density_at(&w, w.usable_radius_mm()) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn radial_profile_average_yield_below_center_yield() {
        let w = Wafer::w300();
        let p = RadialDefectProfile::new(0.1, 3.0).unwrap();
        let die = DieGeometry::square(H100_AREA).unwrap();
        let avg = p.average_yield(&w, &die, YieldModel::Poisson).unwrap();
        let center = YieldModel::Poisson.yield_fraction(H100_AREA, 0.1);
        assert!(avg < center);
    }

    #[test]
    fn radial_profile_split_gain_exceeds_uniform_gain() {
        // The Teets effect: small dies gain slightly more than the uniform
        // model predicts because they harvest the clean wafer centre better.
        let w = Wafer::w300();
        let p = RadialDefectProfile::new(0.1, 3.0).unwrap();
        let big = DieGeometry::square(H100_AREA).unwrap();
        let small = big.shrink(4).unwrap();
        let y_big = p.average_yield(&w, &big, YieldModel::Poisson).unwrap();
        let y_small = p.average_yield(&w, &small, YieldModel::Poisson).unwrap();
        let radial_gain = y_small / y_big;
        let uniform_gain = YieldModel::Poisson.split_yield_gain(H100_AREA, 0.1, 4);
        assert!(
            radial_gain > uniform_gain * 0.99,
            "radial {radial_gain} vs uniform {uniform_gain}"
        );
    }

    #[test]
    fn edge_factor_below_one_is_clamped() {
        let p = RadialDefectProfile::new(0.1, 0.5).unwrap();
        assert!((p.edge_factor - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn yield_in_unit_interval(area in 1.0..5000.0f64, d0 in 0.0..5.0f64) {
            for (_, m) in YieldModel::standard_suite() {
                let y = m.yield_fraction(area, d0);
                prop_assert!((0.0..=1.0).contains(&y));
            }
        }

        #[test]
        fn yield_monotone_decreasing_in_area(
            a1 in 1.0..2000.0f64,
            delta in 1.0..2000.0f64,
            d0 in 0.01..2.0f64,
        ) {
            for (_, m) in YieldModel::standard_suite() {
                let y1 = m.yield_fraction(a1, d0);
                let y2 = m.yield_fraction(a1 + delta, d0);
                prop_assert!(y2 <= y1 + 1e-12);
            }
        }

        #[test]
        fn yield_monotone_decreasing_in_d0(
            area in 1.0..2000.0f64,
            d1 in 0.0..2.0f64,
            delta in 0.001..2.0f64,
        ) {
            for (_, m) in YieldModel::standard_suite() {
                let y1 = m.yield_fraction(area, d1);
                let y2 = m.yield_fraction(area, d1 + delta);
                prop_assert!(y2 <= y1 + 1e-12);
            }
        }

        #[test]
        fn split_gain_at_least_one(
            area in 10.0..2000.0f64,
            d0 in 0.0..2.0f64,
            n in 1u32..16,
        ) {
            for (_, m) in YieldModel::standard_suite() {
                prop_assert!(m.split_yield_gain(area, d0, n) >= 1.0 - 1e-12);
            }
        }
    }
}

//! Deterministic cell-level routing: arrivals are rebalanced across a
//! cell's live instances, weighted by free queue capacity.
//!
//! Without a router, each instance owns its arrival stream, so a failed
//! or parked instance strands its traffic. The router turns the cell into
//! a single arrival pool: at every control tick it snapshots per-slot
//! weights (free queue capacity by default), and the data plane
//! apportions each tick's cell-level Poisson draw across the currently
//! live slots with the largest-remainder method — pure integer
//! arithmetic, so the split is exactly reproducible at any shard or
//! thread count. The snapshot refreshes only at control ticks, modeling a
//! load balancer with periodically-updated backend stats.

use crate::controller::{CellObs, Command, Controller, Mode, Phase};
use rand::rngs::StdRng;

/// Router policy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Weight live slots by free queue capacity (`true`, the default) or
    /// uniformly (`false` — a round-robin-style baseline for quantifying
    /// what capacity-aware routing buys).
    pub weight_by_free_capacity: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            weight_by_free_capacity: true,
        }
    }
}

/// The per-cell router.
#[derive(Debug, Clone)]
pub struct Router {
    cfg: RouterConfig,
}

impl Router {
    /// Builds the router.
    pub fn new(cfg: RouterConfig) -> Self {
        Self { cfg }
    }
}

impl Controller for Router {
    fn name(&self) -> &'static str {
        "route"
    }

    fn control(&mut self, obs: &CellObs, _pending: &[Command], _rng: &mut StdRng) -> Vec<Command> {
        let weights = obs
            .slots
            .iter()
            .map(|s| match s.mode {
                // Queue room is granted per pool: on a phase-split cell
                // only the prefill pool receives routed arrivals — the
                // decode pool's work arrives over the KV link, never the
                // front door.
                Mode::Live if s.phase != Phase::Decode => {
                    if self.cfg.weight_by_free_capacity {
                        (obs.max_queue as u64).saturating_sub(s.queued)
                    } else {
                        1
                    }
                }
                _ => 0,
            })
            .collect();
        vec![Command::SetWeights { weights }]
    }
}

/// Splits `n` items over integer `weights` proportionally, using the
/// largest-remainder method: every entry gets `⌊n·wᵢ/W⌋`, and the
/// leftover items go to the largest remainders (ties to the lowest slot).
/// Returns all zeros when the weights sum to zero. Exact: the shares
/// always sum to `n` (when any weight is positive), with no floating
/// point anywhere.
pub fn apportion(n: u64, weights: &[u64]) -> Vec<u64> {
    let mut shares = Vec::new();
    let mut scratch = Vec::new();
    apportion_into(n, weights, &mut shares, &mut scratch);
    shares
}

/// In-place variant of [`apportion`] for hot loops: writes the shares
/// into `shares` and uses `scratch` for the remainder sort, so a caller
/// that reuses both buffers (e.g. the fleet engine's per-tick routing)
/// performs no allocation once they have grown to the slot count.
pub fn apportion_into(
    n: u64,
    weights: &[u64],
    shares: &mut Vec<u64>,
    scratch: &mut Vec<(u128, u32)>,
) {
    shares.clear();
    scratch.clear();
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    if total == 0 || n == 0 {
        shares.resize(weights.len(), 0);
        return;
    }
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let exact = n as u128 * w as u128;
        let share = (exact / total) as u64;
        shares.push(share);
        assigned += share;
        scratch.push((exact % total, i as u32));
    }
    // Largest remainder first; ties broken toward the lowest slot index,
    // making the comparator total so the result is independent of the
    // sort algorithm.
    scratch.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in scratch.iter().take((n - assigned) as usize) {
        shares[i as usize] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::InstanceObs;
    use rand::SeedableRng;

    #[test]
    fn weights_track_free_capacity_of_live_slots() {
        let mut r = Router::new(RouterConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let obs = CellObs {
            tick: 0,
            interval_s: 5.0,
            arrived_since_last: 0,
            arrived_by_class: [0; 3],
            capacity_rps_per_instance: 2.0,
            max_queue: 10,
            chaos_down: 0,
            phase_split: None,
            clock_points: Vec::new(),
            slots: vec![
                InstanceObs {
                    mode: Mode::Live,
                    phase: Phase::Mixed,
                    clock: 0,
                    queued: 3,
                    active: 0,
                },
                InstanceObs {
                    mode: Mode::Down,
                    phase: Phase::Mixed,
                    clock: 0,
                    queued: 0,
                    active: 0,
                },
                InstanceObs {
                    mode: Mode::Live,
                    phase: Phase::Mixed,
                    clock: 0,
                    queued: 12, // Over capacity (stale): clamps to 0.
                    active: 0,
                },
                InstanceObs {
                    mode: Mode::Cold,
                    phase: Phase::Mixed,
                    clock: 0,
                    queued: 0,
                    active: 0,
                },
            ],
        };
        let cmds = r.control(&obs, &[], &mut rng);
        assert_eq!(
            cmds,
            vec![Command::SetWeights {
                weights: vec![7, 0, 0, 0]
            }]
        );
    }

    #[test]
    fn decode_pool_slots_get_no_queue_room() {
        let mut r = Router::new(RouterConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let obs = CellObs {
            tick: 0,
            interval_s: 5.0,
            arrived_since_last: 0,
            arrived_by_class: [0; 3],
            capacity_rps_per_instance: 2.0,
            max_queue: 10,
            chaos_down: 0,
            phase_split: None,
            clock_points: Vec::new(),
            slots: vec![
                InstanceObs {
                    mode: Mode::Live,
                    phase: Phase::Prefill,
                    clock: 0,
                    queued: 2,
                    active: 0,
                },
                InstanceObs {
                    mode: Mode::Live,
                    phase: Phase::Decode,
                    clock: 0,
                    queued: 0,
                    active: 30,
                },
            ],
        };
        let cmds = r.control(&obs, &[], &mut rng);
        assert_eq!(
            cmds,
            vec![Command::SetWeights {
                weights: vec![8, 0]
            }]
        );
    }

    #[test]
    fn uniform_mode_ignores_queue_depth() {
        let mut r = Router::new(RouterConfig {
            weight_by_free_capacity: false,
        });
        let mut rng = StdRng::seed_from_u64(1);
        let obs = CellObs {
            tick: 0,
            interval_s: 5.0,
            arrived_since_last: 0,
            arrived_by_class: [0; 3],
            capacity_rps_per_instance: 2.0,
            max_queue: 10,
            chaos_down: 0,
            phase_split: None,
            clock_points: Vec::new(),
            slots: vec![
                InstanceObs {
                    mode: Mode::Live,
                    phase: Phase::Mixed,
                    clock: 0,
                    queued: 9,
                    active: 0,
                },
                InstanceObs {
                    mode: Mode::Live,
                    phase: Phase::Mixed,
                    clock: 0,
                    queued: 0,
                    active: 0,
                },
            ],
        };
        let cmds = r.control(&obs, &[], &mut rng);
        assert_eq!(
            cmds,
            vec![Command::SetWeights {
                weights: vec![1, 1]
            }]
        );
    }

    #[test]
    fn apportion_is_exact_and_proportional() {
        // Exact shares are 2.5, 2.5, 5.0: one leftover item exists and
        // the remainder tie breaks toward the lower slot.
        let shares = apportion(10, &[1, 1, 2]);
        assert_eq!(shares.iter().sum::<u64>(), 10);
        assert_eq!(shares, vec![3, 2, 5]);
        let shares = apportion(10, &[1, 1, 2, 0]);
        assert_eq!(shares, vec![3, 2, 5, 0]);
    }

    #[test]
    fn apportion_zero_weights_or_items() {
        assert_eq!(apportion(5, &[0, 0]), vec![0, 0]);
        assert_eq!(apportion(0, &[3, 4]), vec![0, 0]);
        assert_eq!(apportion(5, &[]), Vec::<u64>::new());
    }

    #[test]
    fn apportion_into_reuses_buffers_and_matches() {
        let mut shares = Vec::new();
        let mut scratch = Vec::new();
        for (n, weights) in [
            (10u64, vec![1u64, 1, 2]),
            (7, vec![0, 5, 3]),
            (0, vec![2, 2]),
        ] {
            apportion_into(n, &weights, &mut shares, &mut scratch);
            assert_eq!(shares, apportion(n, &weights), "n={n}");
        }
    }

    #[test]
    fn apportion_sums_exactly_over_many_shapes() {
        for n in [1u64, 7, 100, 12345] {
            for weights in [vec![5, 0, 3, 9, 1], vec![1; 13], vec![u32::MAX as u64; 4]] {
                let shares = apportion(n, &weights);
                assert_eq!(shares.iter().sum::<u64>(), n, "n={n} w={weights:?}");
                for (s, &w) in shares.iter().zip(&weights) {
                    assert!(w > 0 || *s == 0);
                }
            }
        }
    }
}

//! Reactive per-cell autoscaling with scale-out latency and a warm pool.
//!
//! The autoscaler tracks the cell's observed arrival rate with an EWMA,
//! adds a backlog-drain term, and converts the demand into a target live
//! count against the per-instance capacity at a configured utilization
//! ceiling. Scale-out is not free: activations pay the warm or cold boot
//! latency (the data plane picks which from the slot's mode), which is
//! exactly the elasticity cost the warm pool exists to hide.

use crate::controller::{CellObs, Command, Controller, Mode};
use rand::rngs::StdRng;

/// Autoscaler policy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalerConfig {
    /// Utilization ceiling the live pool is sized against (demand /
    /// capacity at this utilization), in `(0, 1]`.
    pub target_util: f64,
    /// EWMA smoothing factor per control tick, in `(0, 1]` (1 = no
    /// smoothing).
    pub ewma_alpha: f64,
    /// Live instances the cell never scales below.
    pub min_live: u32,
    /// Most activations or parks issued per control tick.
    pub max_step: u32,
    /// Boot latency of a power-gated (cold) instance, seconds.
    pub cold_start_s: f64,
    /// Boot latency of a warm (powered, parked) instance, seconds.
    pub warm_start_s: f64,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        Self {
            target_util: 0.7,
            ewma_alpha: 0.4,
            min_live: 1,
            max_step: u32::MAX,
            cold_start_s: 120.0,
            warm_start_s: 5.0,
        }
    }
}

/// The reactive autoscaler (one per cell; holds the EWMA state).
#[derive(Debug, Clone)]
pub struct Autoscaler {
    cfg: AutoscalerConfig,
    ewma_rps: Option<f64>,
}

impl Autoscaler {
    /// Builds an autoscaler with no demand history.
    pub fn new(cfg: AutoscalerConfig) -> Self {
        Self {
            cfg,
            ewma_rps: None,
        }
    }

    /// Smoothed cell demand estimate, requests/s (for tests/diagnostics).
    pub fn ewma_rps(&self) -> Option<f64> {
        self.ewma_rps
    }
}

impl Controller for Autoscaler {
    fn name(&self) -> &'static str {
        "autoscale"
    }

    fn control(&mut self, obs: &CellObs, _pending: &[Command], _rng: &mut StdRng) -> Vec<Command> {
        let interval = obs.interval_s.max(1e-9);
        let rate = obs.arrived_since_last as f64 / interval;
        let ewma = match self.ewma_rps {
            None => rate,
            Some(prev) => self.cfg.ewma_alpha * rate + (1.0 - self.cfg.ewma_alpha) * prev,
        };
        self.ewma_rps = Some(ewma);

        // Demand = smoothed arrivals plus draining the standing backlog
        // within one control interval.
        let demand_rps = ewma + obs.queued_total() as f64 / interval;
        let cap = (obs.capacity_rps_per_instance * self.cfg.target_util).max(1e-9);
        let healthy = obs.healthy();
        let floor = self.cfg.min_live.min(healthy);
        let desired = ((demand_rps / cap).ceil() as u32).clamp(floor, healthy);

        let live = obs.live();
        let planned = live + obs.booting();
        let mut cmds = Vec::new();
        if desired > planned {
            // Scale out: warm slots first (fast boot), then cold, both in
            // ascending slot order so the choice is deterministic.
            let need = (desired - planned).min(self.cfg.max_step) as usize;
            let parked = |want: Mode| {
                obs.slots
                    .iter()
                    .enumerate()
                    .filter(move |(_, s)| s.mode == want)
                    .map(|(i, _)| i as u32)
            };
            for slot in parked(Mode::Warm).chain(parked(Mode::Cold)).take(need) {
                cmds.push(Command::Activate { slot });
            }
        } else if desired < live {
            // Scale in: park idle live slots, highest slot first, so the
            // low-numbered slots act as the cell's stable primaries.
            let excess = (live - desired).min(self.cfg.max_step) as usize;
            let idle = obs
                .slots
                .iter()
                .enumerate()
                .rev()
                .filter(|(_, s)| s.mode == Mode::Live && s.queued == 0 && s.active == 0)
                .map(|(i, _)| i as u32);
            for slot in idle.take(excess) {
                cmds.push(Command::Park { slot });
            }
        }
        cmds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::InstanceObs;
    use rand::SeedableRng;

    fn obs(slots: Vec<InstanceObs>, arrived: u64) -> CellObs {
        CellObs {
            tick: 10,
            interval_s: 5.0,
            arrived_since_last: arrived,
            capacity_rps_per_instance: 2.0,
            max_queue: 1000,
            slots,
        }
    }

    fn slot(mode: Mode, queued: u64, active: u32) -> InstanceObs {
        InstanceObs {
            mode,
            queued,
            active,
        }
    }

    #[test]
    fn parks_idle_slots_under_low_demand() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        // 4 live, all idle, 5 arrivals in 5 s = 1 rps; capacity at 70%
        // utilization is 1.4 rps/instance => 1 instance suffices.
        let o = obs(vec![slot(Mode::Live, 0, 0); 4], 5);
        let cmds = a.control(&o, &[], &mut rng);
        assert_eq!(
            cmds,
            vec![
                Command::Park { slot: 3 },
                Command::Park { slot: 2 },
                Command::Park { slot: 1 }
            ]
        );
    }

    #[test]
    fn respects_min_live_and_busy_slots() {
        let mut a = Autoscaler::new(AutoscalerConfig {
            min_live: 2,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        // Zero demand, but slot 2 is busy: only idle slots park, and not
        // below min_live.
        let o = obs(
            vec![
                slot(Mode::Live, 0, 0),
                slot(Mode::Live, 0, 0),
                slot(Mode::Live, 4, 2),
                slot(Mode::Live, 0, 0),
            ],
            0,
        );
        let cmds = a.control(&o, &[], &mut rng);
        assert_eq!(
            cmds,
            vec![Command::Park { slot: 3 }, Command::Park { slot: 1 }]
        );
    }

    #[test]
    fn activates_warm_before_cold_on_demand_spike() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        // 70 arrivals in 5 s = 14 rps; at 1.4 rps/instance that needs all
        // 4 healthy slots. One live, one booting => two activations.
        let o = obs(
            vec![
                slot(Mode::Live, 0, 1),
                slot(Mode::Cold, 0, 0),
                slot(Mode::Warm, 0, 0),
                slot(Mode::Booting, 0, 0),
                slot(Mode::Down, 0, 0),
            ],
            70,
        );
        let cmds = a.control(&o, &[], &mut rng);
        assert_eq!(
            cmds,
            vec![Command::Activate { slot: 2 }, Command::Activate { slot: 1 }]
        );
    }

    #[test]
    fn backlog_forces_scale_out_even_with_quiet_arrivals() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let o = obs(
            vec![slot(Mode::Live, 200, 4), slot(Mode::Cold, 0, 0)],
            0, // No fresh arrivals, but a deep backlog.
        );
        let cmds = a.control(&o, &[], &mut rng);
        assert_eq!(cmds, vec![Command::Activate { slot: 1 }]);
    }

    #[test]
    fn ewma_smooths_demand() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let o1 = obs(vec![slot(Mode::Live, 0, 0); 2], 100);
        a.control(&o1, &[], &mut rng);
        let after_spike = a.ewma_rps().unwrap();
        let o2 = obs(vec![slot(Mode::Live, 0, 0); 2], 0);
        a.control(&o2, &[], &mut rng);
        let after_quiet = a.ewma_rps().unwrap();
        assert!(after_quiet > 0.0, "EWMA should remember the spike");
        assert!(after_quiet < after_spike);
    }

    #[test]
    fn max_step_caps_actions() {
        let mut a = Autoscaler::new(AutoscalerConfig {
            max_step: 1,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let o = obs(vec![slot(Mode::Live, 0, 0); 6], 0);
        assert_eq!(a.control(&o, &[], &mut rng).len(), 1);
    }
}

//! Reactive per-cell autoscaling with scale-out latency, a warm pool,
//! and priority-aware admission control.
//!
//! The autoscaler tracks the cell's observed arrival rate with two EWMAs
//! — one for the guaranteed classes ([`PriorityClass::Interactive`] +
//! [`PriorityClass::Batch`]), one for [`PriorityClass::BestEffort`] —
//! adds a backlog-drain term, and converts the demand into a target live
//! count against the per-instance capacity at a configured utilization
//! ceiling. Scale-out is not free: activations pay the warm or cold boot
//! latency (the data plane picks which from the slot's mode), which is
//! exactly the elasticity cost the warm pool exists to hide.
//!
//! Admission control is the priority-aware half: when even the fully
//! scaled-out cell could not serve total demand at the target
//! utilization, the autoscaler revokes best-effort admission
//! ([`Command::SetAdmission`]) so scavenger load is shed *before* the
//! guaranteed classes lose queue room or SLO headroom, and re-grants it
//! once total demand fits again.
//!
//! On phase-split cells ([`CellObs::phase_split`] is set) the autoscaler
//! is phase-aware: demand is priced against *per-pool* capacities (every
//! admitted request needs one prefill and one decode residency), the
//! live target is the sum of both pool targets, and the prefill/decode
//! partition is re-asserted each control tick with
//! [`Command::SetPhase`] — so a prompt-heavy shift grows the prefill
//! pool at the decode pool's expense without changing fleet size.

use crate::controller::{CellObs, Command, Controller, Mode, Phase, PriorityClass};
use rand::rngs::StdRng;

/// Autoscaler policy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalerConfig {
    /// Utilization ceiling the live pool is sized against (demand /
    /// capacity at this utilization), in `(0, 1]`.
    pub target_util: f64,
    /// EWMA smoothing factor per control tick, in `(0, 1]` (1 = no
    /// smoothing).
    pub ewma_alpha: f64,
    /// Live instances the cell never scales below.
    pub min_live: u32,
    /// Most activations or parks issued per control tick.
    pub max_step: u32,
    /// Boot latency of a power-gated (cold) instance, seconds.
    pub cold_start_s: f64,
    /// Boot latency of a warm (powered, parked) instance, seconds.
    pub warm_start_s: f64,
    /// Whether to shed best-effort traffic when total demand exceeds the
    /// fully-scaled-out cell's capacity (priority-aware admission
    /// control). When `false` the autoscaler never issues
    /// [`Command::SetAdmission`].
    pub shed_best_effort: bool,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        Self {
            target_util: 0.7,
            ewma_alpha: 0.4,
            min_live: 1,
            max_step: u32::MAX,
            cold_start_s: 120.0,
            warm_start_s: 5.0,
            shed_best_effort: true,
        }
    }
}

/// The reactive autoscaler (one per cell; holds the EWMA state).
#[derive(Debug, Clone)]
pub struct Autoscaler {
    cfg: AutoscalerConfig,
    /// Smoothed guaranteed-class (interactive + batch) arrival rate.
    ewma_guaranteed_rps: Option<f64>,
    /// Smoothed best-effort arrival rate.
    ewma_best_effort_rps: Option<f64>,
    /// Whether best-effort admission is currently granted.
    allow_best_effort: bool,
}

impl Autoscaler {
    /// Builds an autoscaler with no demand history.
    pub fn new(cfg: AutoscalerConfig) -> Self {
        Self {
            cfg,
            ewma_guaranteed_rps: None,
            ewma_best_effort_rps: None,
            allow_best_effort: true,
        }
    }

    /// Smoothed total cell demand estimate, requests/s (for
    /// tests/diagnostics).
    pub fn ewma_rps(&self) -> Option<f64> {
        match (self.ewma_guaranteed_rps, self.ewma_best_effort_rps) {
            (None, None) => None,
            (g, b) => Some(g.unwrap_or(0.0) + b.unwrap_or(0.0)),
        }
    }

    /// Whether best-effort traffic is currently admitted.
    pub fn allows_best_effort(&self) -> bool {
        self.allow_best_effort
    }

    fn smooth(&self, prev: Option<f64>, rate: f64) -> f64 {
        match prev {
            None => rate,
            Some(p) => self.cfg.ewma_alpha * rate + (1.0 - self.cfg.ewma_alpha) * p,
        }
    }
}

impl Controller for Autoscaler {
    fn name(&self) -> &'static str {
        "autoscale"
    }

    fn control(&mut self, obs: &CellObs, _pending: &[Command], _rng: &mut StdRng) -> Vec<Command> {
        let interval = obs.interval_s.max(1e-9);
        let be = obs.arrived_by_class[PriorityClass::BestEffort.index()];
        // Untagged arrivals (legacy single-class callers leave
        // `arrived_by_class` zeroed) count as guaranteed.
        let guaranteed = obs.arrived_since_last.saturating_sub(be);
        let g_rate = guaranteed as f64 / interval;
        let be_rate = be as f64 / interval;
        let ewma_g = self.smooth(self.ewma_guaranteed_rps, g_rate);
        let ewma_be = self.smooth(self.ewma_best_effort_rps, be_rate);
        self.ewma_guaranteed_rps = Some(ewma_g);
        self.ewma_best_effort_rps = Some(ewma_be);

        // Demand = smoothed arrivals plus draining the standing backlog
        // within one control interval.
        let backlog_rps = obs.queued_total() as f64 / interval;
        let demand_guaranteed = ewma_g + backlog_rps;
        let demand_total = demand_guaranteed + ewma_be;
        let cap = (obs.capacity_rps_per_instance * self.cfg.target_util).max(1e-9);
        let healthy = obs.healthy();
        // Announced chaos losses raise the floor: the cell holds that
        // many extra slots live as replacement capacity instead of
        // parking them into the blast radius. Campaign-free cells see
        // `chaos_down == 0` and behave exactly as before.
        let floor = (self.cfg.min_live + obs.chaos_down).min(healthy);

        // Admission: shed best effort only when even every healthy
        // instance could not carry total demand at the target
        // utilization — pressure by construction, not a tunable knob.
        // With no best-effort demand at all, revoking admission would be
        // a no-op that misrepresents the cell's state, so don't.
        let fits = (demand_total / cap).ceil() as u32 <= healthy;
        let allow = !self.cfg.shed_best_effort || fits || ewma_be <= 0.0;
        let admission_changed = allow != self.allow_best_effort;
        self.allow_best_effort = allow;
        let demand_rps = if allow {
            demand_total
        } else {
            demand_guaranteed
        };
        // Phase-split cells size each pool against its own per-phase
        // capacity (every admitted request needs one prefill *and* one
        // decode residency, so both pools see the full demand stream) and
        // re-assert the prefill/decode partition below; monolithic cells
        // size the single pool as before.
        let (desired, prefill_target) = match &obs.phase_split {
            Some(ps) => {
                let cap_p = (ps.prefill_capacity_rps * self.cfg.target_util).max(1e-9);
                let cap_d = (ps.decode_capacity_rps * self.cfg.target_util).max(1e-9);
                let need_p = ((demand_rps / cap_p).ceil() as u32).max(1);
                let need_d = ((demand_rps / cap_d).ceil() as u32).max(1);
                // A split cell needs at least one slot per pool.
                let split_floor = floor.max(2.min(healthy));
                let desired = (need_p + need_d).clamp(split_floor, healthy);
                // When both pools fit, prefill takes exactly its need;
                // when demand outruns the cell, keep the partition
                // *proportional* to the per-pool needs — handing prefill
                // everything up to `desired − 1` would starve the decode
                // pool, wedge the KV hand-off, and deadlock the cell
                // behind an ever-growing backlog.
                let prefill = if need_p + need_d <= desired {
                    need_p
                } else {
                    ((desired as u64 * need_p as u64) / (need_p as u64 + need_d as u64)) as u32
                };
                (
                    desired,
                    Some(prefill.clamp(1, desired.saturating_sub(1).max(1))),
                )
            }
            None => (
                ((demand_rps / cap).ceil() as u32).clamp(floor, healthy),
                None,
            ),
        };

        let live = obs.live();
        let planned = live + obs.booting();
        let mut cmds = Vec::new();
        if admission_changed {
            cmds.push(Command::SetAdmission {
                allow_best_effort: allow,
            });
        }
        if desired > planned {
            // Scale out: warm slots first (fast boot), then cold, both in
            // ascending slot order so the choice is deterministic.
            let need = (desired - planned).min(self.cfg.max_step) as usize;
            let parked = |want: Mode| {
                obs.slots
                    .iter()
                    .enumerate()
                    .filter(move |(_, s)| s.mode == want)
                    .map(|(i, _)| i as u32)
            };
            for slot in parked(Mode::Warm).chain(parked(Mode::Cold)).take(need) {
                cmds.push(Command::Activate { slot });
            }
        } else if desired < live {
            // Scale in: park idle live slots, highest slot first, so the
            // low-numbered slots act as the cell's stable primaries.
            let excess = (live - desired).min(self.cfg.max_step) as usize;
            let idle = obs
                .slots
                .iter()
                .enumerate()
                .rev()
                .filter(|(_, s)| s.mode == Mode::Live && s.queued == 0 && s.active == 0)
                .map(|(i, _)| i as u32);
            for slot in idle.take(excess) {
                cmds.push(Command::Park { slot });
            }
        }
        if let Some(np) = prefill_target {
            // Re-assert the phase partition over the slots that actually
            // serve — Live or Booting, in index order: the first `np`
            // form the prefill pool, the rest decode. Painting parked
            // slots instead would deadlock a scaled-down cell: the live
            // set could end up all-decode (shedding every arrival with
            // empty queues, so demand never forces a scale-up) while the
            // "prefill" slots sleep. Freshly activated slots keep a stale
            // phase for at most one control interval. The data plane
            // applies a SetPhase only once the slot is idle, so busy
            // mismatched slots converge as they drain.
            let mut assigned = 0u32;
            for (i, s) in obs.slots.iter().enumerate() {
                if !matches!(s.mode, Mode::Live | Mode::Booting) {
                    continue;
                }
                let want = if assigned < np {
                    Phase::Prefill
                } else {
                    Phase::Decode
                };
                assigned += 1;
                if s.phase != want {
                    cmds.push(Command::SetPhase {
                        slot: i as u32,
                        phase: want,
                    });
                }
            }
        }
        cmds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::InstanceObs;
    use rand::SeedableRng;

    fn obs(slots: Vec<InstanceObs>, arrived: u64) -> CellObs {
        CellObs {
            tick: 10,
            interval_s: 5.0,
            arrived_since_last: arrived,
            arrived_by_class: [arrived, 0, 0],
            capacity_rps_per_instance: 2.0,
            max_queue: 1000,
            chaos_down: 0,
            phase_split: None,
            clock_points: Vec::new(),
            slots,
        }
    }

    fn slot(mode: Mode, queued: u64, active: u32) -> InstanceObs {
        InstanceObs {
            mode,
            phase: Phase::Mixed,
            clock: 0,
            queued,
            active,
        }
    }

    #[test]
    fn parks_idle_slots_under_low_demand() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        // 4 live, all idle, 5 arrivals in 5 s = 1 rps; capacity at 70%
        // utilization is 1.4 rps/instance => 1 instance suffices.
        let o = obs(vec![slot(Mode::Live, 0, 0); 4], 5);
        let cmds = a.control(&o, &[], &mut rng);
        assert_eq!(
            cmds,
            vec![
                Command::Park { slot: 3 },
                Command::Park { slot: 2 },
                Command::Park { slot: 1 }
            ]
        );
    }

    #[test]
    fn respects_min_live_and_busy_slots() {
        let mut a = Autoscaler::new(AutoscalerConfig {
            min_live: 2,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        // Zero demand, but slot 2 is busy: only idle slots park, and not
        // below min_live.
        let o = obs(
            vec![
                slot(Mode::Live, 0, 0),
                slot(Mode::Live, 0, 0),
                slot(Mode::Live, 4, 2),
                slot(Mode::Live, 0, 0),
            ],
            0,
        );
        let cmds = a.control(&o, &[], &mut rng);
        assert_eq!(
            cmds,
            vec![Command::Park { slot: 3 }, Command::Park { slot: 1 }]
        );
    }

    #[test]
    fn chaos_losses_raise_the_scale_down_floor() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        // Zero demand over 4 idle live slots would normally park down to
        // min_live = 1; with 2 slots inside an announced chaos window the
        // floor rises to 3 so the cell keeps replacement capacity live.
        let mut o = obs(vec![slot(Mode::Live, 0, 0); 4], 0);
        o.chaos_down = 2;
        let cmds = a.control(&o, &[], &mut rng);
        assert_eq!(cmds, vec![Command::Park { slot: 3 }]);
        // The same cell without the campaign parks all the way down.
        let mut b = Autoscaler::new(AutoscalerConfig::default());
        let o = obs(vec![slot(Mode::Live, 0, 0); 4], 0);
        assert_eq!(b.control(&o, &[], &mut rng).len(), 3);
    }

    #[test]
    fn activates_warm_before_cold_on_demand_spike() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        // 28 arrivals in 5 s = 5.6 rps; at 1.4 rps/instance that needs
        // all 4 healthy slots. One live, one booting => two activations.
        let o = obs(
            vec![
                slot(Mode::Live, 0, 1),
                slot(Mode::Cold, 0, 0),
                slot(Mode::Warm, 0, 0),
                slot(Mode::Booting, 0, 0),
                slot(Mode::Down, 0, 0),
            ],
            28,
        );
        let cmds = a.control(&o, &[], &mut rng);
        assert_eq!(
            cmds,
            vec![Command::Activate { slot: 2 }, Command::Activate { slot: 1 }]
        );
    }

    #[test]
    fn backlog_forces_scale_out_even_with_quiet_arrivals() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let o = obs(
            vec![slot(Mode::Live, 10, 4), slot(Mode::Cold, 0, 0)],
            0, // No fresh arrivals, but a standing backlog.
        );
        let cmds = a.control(&o, &[], &mut rng);
        assert_eq!(cmds, vec![Command::Activate { slot: 1 }]);
    }

    #[test]
    fn ewma_smooths_demand() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let o1 = obs(vec![slot(Mode::Live, 0, 0); 2], 100);
        a.control(&o1, &[], &mut rng);
        let after_spike = a.ewma_rps().unwrap();
        let o2 = obs(vec![slot(Mode::Live, 0, 0); 2], 0);
        a.control(&o2, &[], &mut rng);
        let after_quiet = a.ewma_rps().unwrap();
        assert!(after_quiet > 0.0, "EWMA should remember the spike");
        assert!(after_quiet < after_spike);
    }

    #[test]
    fn max_step_caps_actions() {
        let mut a = Autoscaler::new(AutoscalerConfig {
            max_step: 1,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let o = obs(vec![slot(Mode::Live, 0, 0); 6], 0);
        assert_eq!(a.control(&o, &[], &mut rng).len(), 1);
    }

    #[test]
    fn pressure_sheds_best_effort_before_guaranteed() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        // 2 healthy slots carry 2 × 1.4 = 2.8 rps at target utilization.
        // Guaranteed 10/5 s = 2 rps fits; +best-effort 10/5 s = 2 rps
        // does not => revoke best-effort admission and size only against
        // the guaranteed demand.
        let mut o = obs(vec![slot(Mode::Live, 0, 1); 2], 20);
        o.arrived_by_class = [5, 5, 10];
        let cmds = a.control(&o, &[], &mut rng);
        assert!(cmds.contains(&Command::SetAdmission {
            allow_best_effort: false
        }));
        assert!(!a.allows_best_effort());
        // Guaranteed demand alone (2 rps) fits the 2 live slots: no
        // scale action is possible anyway (no parked slots), and no park
        // happens either.
        assert!(!cmds.iter().any(|c| matches!(c, Command::Park { .. })));

        // Demand falls back within capacity: admission is re-granted
        // exactly once (idempotent state, not re-asserted every tick).
        let mut quiet = obs(vec![slot(Mode::Live, 0, 1); 2], 0);
        quiet.arrived_by_class = [0; 3];
        let cmds = a.control(&quiet, &[], &mut rng);
        assert!(cmds.contains(&Command::SetAdmission {
            allow_best_effort: true
        }));
        let cmds = a.control(&quiet, &[], &mut rng);
        assert!(!cmds
            .iter()
            .any(|c| matches!(c, Command::SetAdmission { .. })));
    }

    #[test]
    fn phase_split_sizes_pools_and_reasserts_partition() {
        use crate::controller::PhaseObs;
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        // 28 arrivals / 5 s = 5.6 rps. Prefill capacity 8 rps/inst at
        // 70% util = 5.6 ⇒ 1 prefill slot; decode capacity 2 rps at 70%
        // = 1.4 ⇒ 4 decode slots ⇒ desired live = 5 of 6 healthy.
        let mut o = obs(
            vec![
                slot(Mode::Live, 0, 1),
                slot(Mode::Live, 0, 1),
                slot(Mode::Live, 0, 2),
                slot(Mode::Live, 0, 2),
                slot(Mode::Live, 0, 2),
                slot(Mode::Warm, 0, 0),
            ],
            28,
        );
        // Start with phases scrambled: slot 2 prefill, the rest decode.
        for (i, s) in o.slots.iter_mut().enumerate() {
            s.phase = if i == 2 {
                Phase::Prefill
            } else {
                Phase::Decode
            };
        }
        o.phase_split = Some(PhaseObs {
            prefill_capacity_rps: 8.0,
            decode_capacity_rps: 2.0,
            kv_backlog_us: 0,
        });
        let cmds = a.control(&o, &[], &mut rng);
        // The partition converges to: slot 0 prefill, slots 1..6 decode.
        assert!(cmds.contains(&Command::SetPhase {
            slot: 0,
            phase: Phase::Prefill
        }));
        assert!(cmds.contains(&Command::SetPhase {
            slot: 2,
            phase: Phase::Decode
        }));
        // Slots already in the right phase are left alone.
        assert!(!cmds
            .iter()
            .any(|c| matches!(c, Command::SetPhase { slot: 1, .. })));
        // No scale action: 5 live slots already match the desired count.
        assert!(!cmds
            .iter()
            .any(|c| matches!(c, Command::Activate { .. } | Command::Park { .. })));
    }

    #[test]
    fn phase_split_keeps_one_slot_per_pool_even_when_quiet() {
        use crate::controller::PhaseObs;
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        // Zero demand on a 4-slot split cell: the cell still keeps two
        // live slots (one per pool) and the partition stays 1 + rest.
        let mut o = obs(vec![slot(Mode::Live, 0, 0); 4], 0);
        for s in o.slots.iter_mut() {
            s.phase = Phase::Decode;
        }
        o.phase_split = Some(PhaseObs {
            prefill_capacity_rps: 4.0,
            decode_capacity_rps: 4.0,
            kv_backlog_us: 0,
        });
        let cmds = a.control(&o, &[], &mut rng);
        let parks = cmds
            .iter()
            .filter(|c| matches!(c, Command::Park { .. }))
            .count();
        assert_eq!(parks, 2, "quiet split cell parks down to 2, not 1");
        assert!(cmds.contains(&Command::SetPhase {
            slot: 0,
            phase: Phase::Prefill
        }));
    }

    #[test]
    fn shedding_can_be_disabled() {
        let mut a = Autoscaler::new(AutoscalerConfig {
            shed_best_effort: false,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let mut o = obs(vec![slot(Mode::Live, 0, 1); 2], 100);
        o.arrived_by_class = [0, 0, 100];
        let cmds = a.control(&o, &[], &mut rng);
        assert!(!cmds
            .iter()
            .any(|c| matches!(c, Command::SetAdmission { .. })));
        assert!(a.allows_best_effort());
    }

    #[test]
    fn untagged_arrivals_count_as_guaranteed() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        // Legacy callers leave arrived_by_class zeroed: all arrivals are
        // treated as guaranteed, and admission control never triggers a
        // best-effort shed that would be a no-op anyway — even though
        // 20 rps massively overloads the 2-slot cell.
        let mut o = obs(vec![slot(Mode::Live, 0, 1); 2], 100);
        o.arrived_by_class = [0; 3];
        let cmds = a.control(&o, &[], &mut rng);
        assert!((a.ewma_rps().unwrap() - 20.0).abs() < 1e-9);
        assert!(!cmds
            .iter()
            .any(|c| matches!(c, Command::SetAdmission { .. })));
        assert!(a.allows_best_effort());
    }
}

//! The fleet-scope half of the two-level control plane: cross-cell
//! observations, per-cell directives, and the [`FleetController`] trait.
//!
//! The cell-scope [`Controller`](crate::Controller) stack is strictly
//! cell-local — that locality is what lets the engine shard cells across
//! threads and stay byte-identical at any thread count. A fleet, though,
//! serves one user population: a hot cell sheds best-effort load while
//! its neighbor idles, and no cell-local policy can see that. The
//! fleet-scope layer closes the gap without giving up the invariant:
//!
//! 1. **Snapshot** — at each fleet tick the engine pauses every cell at
//!    the same data-tick boundary and takes a read-only [`FleetObs`]
//!    (per-cell queue depth, up/live slots, KV-link backlog, chaos
//!    state). Cells in the same data tick still never see each other.
//! 2. **Pure function** — one [`FleetController`] turns the snapshot
//!    into per-cell [`CellDirective`]s. The function is deterministic
//!    (no RNG, no clocks, no ambient state beyond the controller's own
//!    fields), so the same snapshot always yields the same directives
//!    regardless of which worker thread computes them.
//! 3. **Commands** — the engine applies the directives to the *next*
//!    fleet window: admission quotas clamp what each cell admits, and
//!    spill-over routes redirect a bounded fraction of a hot cell's
//!    arrivals to under-loaded cells (deducted at the source schedule,
//!    injected into the destination schedule, conserving every cohort
//!    exactly).
//!
//! Because the snapshot is taken at a barrier, the planner is pure, and
//! the directives are applied identically no matter how cells are
//! sharded, reports stay byte-identical at 1, 2 or 8 threads with the
//! balancer enabled.

/// One cell's state in a fleet-tick snapshot.
///
/// A deliberately small aggregate of what the cell-scope plane already
/// observes — enough to rank cells by load and KV slack, cheap enough to
/// publish at every fleet tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct FleetCellObs {
    /// Requests queued across the cell's slots.
    pub queued: u64,
    /// Sequences currently decoding across the cell.
    pub active: u64,
    /// Slots not down (live + parked + booting).
    pub up: u32,
    /// Slots currently live (serving).
    pub live: u32,
    /// Requests that arrived at the cell during the elapsed fleet window
    /// (after any spill-over redirection).
    pub arrived_window: u64,
    /// Outstanding KV-transfer backlog on the cell's link, microseconds
    /// of link time (zero on monolithic fleets).
    pub kv_backlog_us: u64,
    /// Slots inside an announced chaos window (correlated outage or
    /// drain).
    pub chaos_down: u32,
}

impl FleetCellObs {
    /// An empty per-cell observation; callers fill the public fields in.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A read-only snapshot of the whole fleet at a fleet-tick boundary.
///
/// Built by the engine with every cell paused at the same data tick;
/// `cells` is indexed by cell id, so the same fleet always produces the
/// same snapshot bytes regardless of shard or thread count.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct FleetObs {
    /// Data tick at which this fleet tick runs.
    pub tick: u32,
    /// Seconds covered by the elapsed fleet window.
    pub interval_s: f64,
    /// Whether the fleet serves in phase-split mode (KV links exist).
    pub phase_split: bool,
    /// Sustainable request throughput of one live instance, requests/s
    /// (fleet-wide constant: every cell runs the same GPU and model).
    pub capacity_rps_per_instance: f64,
    /// Queue capacity per instance.
    pub max_queue: u32,
    /// Per-cell observations, indexed by cell id.
    pub cells: Vec<FleetCellObs>,
}

impl FleetObs {
    /// An empty snapshot at `tick` covering `interval_s` seconds;
    /// callers fill the remaining public fields in.
    pub fn new(tick: u32, interval_s: f64) -> Self {
        FleetObs {
            tick,
            interval_s,
            phase_split: false,
            capacity_rps_per_instance: 0.0,
            max_queue: 0,
            cells: Vec::new(),
        }
    }

    /// Total queued requests across the fleet.
    pub fn queued_total(&self) -> u64 {
        self.cells.iter().map(|c| c.queued).sum()
    }

    /// Mean queued requests per cell, rounded down (0 on empty fleets).
    pub fn queued_mean(&self) -> u64 {
        if self.cells.is_empty() {
            0
        } else {
            self.queued_total() / self.cells.len() as u64
        }
    }
}

/// What the fleet scope asks one cell to do for the next fleet window.
///
/// Directives are advisory and bounded: the engine sanitizes them
/// (unknown cells dropped, self-spill dropped, permille clamped to
/// 1000), and a cell with no directive behaves exactly as an isolated
/// cell would.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct CellDirective {
    /// Cell id this directive targets.
    pub cell: u32,
    /// Admission quota for the next fleet window: after this many
    /// requests the cell sheds further arrivals (counted against
    /// admission shed, per tenant). `None` = unlimited.
    pub admission_quota: Option<u64>,
    /// Fraction of the cell's next-window arrivals to redirect to other
    /// cells, in permille (0..=1000). Applied per arrival event with a
    /// cumulative-floor rule, so the redirected count is exact over the
    /// window and independent of event batching.
    pub spill_permille: u16,
    /// Spill destinations as `(cell, weight)` pairs; redirected cohorts
    /// are apportioned by weighted deficit (largest weighted shortfall
    /// first), which is deterministic and starvation-free.
    pub spill_to: Vec<(u32, u64)>,
}

impl CellDirective {
    /// A no-op directive for `cell`; callers fill the public fields in.
    pub fn new(cell: u32) -> Self {
        CellDirective {
            cell,
            ..Default::default()
        }
    }
}

/// A deterministic fleet-scope control policy.
///
/// `plan` runs once per fleet tick over a read-only [`FleetObs`] and
/// returns per-cell directives for the next fleet window. It must be a
/// pure function of the snapshot and the controller's own state: no
/// randomness, no clocks, no I/O — the engine calls it on exactly one
/// thread per fleet tick, but *which* thread is unspecified, and the
/// byte-identical-at-any-thread-count guarantee rests on the answer
/// never depending on that.
///
/// # Examples
///
/// A minimal controller that caps every cell's admissions at its queue
/// capacity and spills from the hottest cell to the coldest:
///
/// ```
/// use litegpu_ctrl::fleet::{CellDirective, FleetCellObs, FleetController, FleetObs};
///
/// struct Cap;
///
/// impl FleetController for Cap {
///     fn name(&self) -> &'static str {
///         "cap"
///     }
///
///     fn plan(&mut self, obs: &FleetObs) -> Vec<CellDirective> {
///         let hot = obs.cells.iter().enumerate().max_by_key(|(_, c)| c.queued);
///         let cold = obs.cells.iter().enumerate().min_by_key(|(_, c)| c.queued);
///         let (Some((hot, _)), Some((cold, _))) = (hot, cold) else {
///             return Vec::new();
///         };
///         let mut d = CellDirective::new(hot as u32);
///         d.admission_quota = Some(obs.max_queue as u64 * obs.cells[hot].live as u64);
///         if hot != cold {
///             d.spill_permille = 250; // redirect up to 25% of arrivals
///             d.spill_to = vec![(cold as u32, 1)];
///         }
///         vec![d]
///     }
/// }
///
/// let mut obs = FleetObs::new(0, 60.0);
/// obs.max_queue = 8;
/// let mut hot = FleetCellObs::new();
/// hot.queued = 100;
/// hot.live = 4;
/// let mut cold = FleetCellObs::new();
/// cold.live = 4;
/// obs.cells = vec![hot, cold];
///
/// let plan = Cap.plan(&obs);
/// assert_eq!(plan[0].cell, 0);
/// assert_eq!(plan[0].spill_to, vec![(1, 1)]);
/// ```
pub trait FleetController {
    /// Short policy name (for labels and reports).
    fn name(&self) -> &'static str;

    /// Computes per-cell directives for the next fleet window.
    fn plan(&mut self, obs: &FleetObs) -> Vec<CellDirective>;
}

/// Configuration of the built-in spill-over balancer (and the fleet-tick
/// cadence it runs at).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct BalancerConfig {
    /// Seconds between fleet ticks. Fleet ticks quantize the engine's
    /// cell interleaving, so a shorter interval reacts faster but costs
    /// more synchronization.
    pub interval_s: f64,
    /// Upper bound on the fraction of a hot cell's arrivals redirected
    /// per window, in permille (0..=1000).
    pub spill_permille: u16,
    /// A cell is *hot* when its queue depth exceeds `hot_factor` times
    /// the fleet-mean queue depth (and is strictly above the mean).
    pub hot_factor: f64,
    /// Admission-quota headroom as a multiple of a cell's sustainable
    /// window throughput (`live × capacity_rps × interval_s`). Infinite
    /// (the default) disables quotas; `1.5` means "admit at most 150% of
    /// what you can serve this window, shed the rest at the boundary".
    pub quota_headroom: f64,
    /// On phase-split fleets, a cell only receives spill when its
    /// KV-link backlog is at most this many microseconds (prefill spill
    /// lands on the destination's KV link; spilling into a congested
    /// link would just move the queue).
    pub kv_slack_us: u64,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            interval_s: 60.0,
            spill_permille: 300,
            hot_factor: 1.5,
            quota_headroom: f64::INFINITY,
            kv_slack_us: 100_000,
        }
    }
}

impl BalancerConfig {
    /// Validates the configuration (the engine calls this as part of
    /// `CtrlConfig::validate`).
    pub fn validate(&self) -> Result<(), &'static str> {
        if !self.interval_s.is_finite() || self.interval_s <= 0.0 {
            return Err("balancer interval_s must be finite and positive");
        }
        if self.spill_permille > 1000 {
            return Err("balancer spill_permille must be <= 1000");
        }
        if !self.hot_factor.is_finite() || self.hot_factor <= 0.0 {
            return Err("balancer hot_factor must be finite and positive");
        }
        if self.quota_headroom.is_nan() || self.quota_headroom <= 0.0 {
            return Err("balancer quota_headroom must be positive (may be infinite)");
        }
        Ok(())
    }

    /// Builds the spill-over balancer this configuration describes.
    pub fn build(&self) -> Box<dyn FleetController + Send> {
        Box::new(SpillBalancer { cfg: *self })
    }
}

/// The built-in fleet policy: queue-deficit spill-over with optional
/// admission quotas.
///
/// Per fleet tick it classifies cells against the fleet-mean queue
/// depth: cells above `hot_factor ×` mean spill up to `spill_permille`
/// of their next-window arrivals; cells at or below the mean with live
/// capacity, no active chaos window, and (on phase-split fleets) KV-link
/// slack receive it, weighted by free queue room. With finite
/// `quota_headroom` every cell also gets an admission quota proportional
/// to its live serving capacity.
pub struct SpillBalancer {
    cfg: BalancerConfig,
}

impl FleetController for SpillBalancer {
    fn name(&self) -> &'static str {
        "spill"
    }

    fn plan(&mut self, obs: &FleetObs) -> Vec<CellDirective> {
        let mean = obs.queued_mean();
        // Hot threshold in integer arithmetic: queued > hot_factor × mean,
        // computed as queued × 1000 > mean × round(hot_factor × 1000) so
        // the comparison is exact and platform-independent.
        let hot_factor_mill = (self.cfg.hot_factor * 1000.0).round() as u128;
        let receivers: Vec<(u32, u64)> = obs
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.queued <= mean
                    && c.live > 0
                    && c.chaos_down == 0
                    && (!obs.phase_split || c.kv_backlog_us <= self.cfg.kv_slack_us)
            })
            .map(|(i, c)| {
                let room = (c.live as u64 * obs.max_queue as u64).saturating_sub(c.queued);
                (i as u32, room.max(1))
            })
            .collect();
        let mut out = Vec::new();
        for (i, c) in obs.cells.iter().enumerate() {
            let hot = self.cfg.spill_permille > 0
                && c.queued > mean
                && (c.queued as u128) * 1000 > (mean as u128) * hot_factor_mill;
            let spill_to: Vec<(u32, u64)> = if hot {
                receivers
                    .iter()
                    .copied()
                    .filter(|&(d, _)| d != i as u32)
                    .collect()
            } else {
                Vec::new()
            };
            let quota = if self.cfg.quota_headroom.is_finite() {
                let cap = obs.capacity_rps_per_instance * c.live as f64 * obs.interval_s;
                Some((cap * self.cfg.quota_headroom).ceil() as u64)
            } else {
                None
            };
            if quota.is_none() && spill_to.is_empty() {
                continue;
            }
            let mut d = CellDirective::new(i as u32);
            d.admission_quota = quota;
            if !spill_to.is_empty() {
                d.spill_permille = self.cfg.spill_permille;
                d.spill_to = spill_to;
            }
            out.push(d);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(queues: &[u64]) -> FleetObs {
        let mut o = FleetObs::new(0, 60.0);
        o.capacity_rps_per_instance = 2.0;
        o.max_queue = 100;
        o.cells = queues
            .iter()
            .map(|&q| {
                let mut c = FleetCellObs::new();
                c.queued = q;
                c.up = 8;
                c.live = 8;
                c
            })
            .collect();
        o
    }

    #[test]
    fn balancer_config_default_validates() {
        assert!(BalancerConfig::default().validate().is_ok());
    }

    #[test]
    fn balancer_config_rejects_bad_fields() {
        let c = BalancerConfig {
            interval_s: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = BalancerConfig {
            spill_permille: 1001,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = BalancerConfig {
            hot_factor: f64::NAN,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = BalancerConfig {
            quota_headroom: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn spill_balancer_targets_hot_cells_only() {
        let mut b = BalancerConfig::default().build();
        // Mean queue = (900 + 0×7) / 8 = 112; hot threshold 1.5× = 168.
        let plan = b.plan(&obs(&[900, 0, 0, 0, 0, 0, 0, 0]));
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].cell, 0);
        assert_eq!(plan[0].spill_permille, 300);
        // All seven cold cells receive, none is the source.
        assert_eq!(plan[0].spill_to.len(), 7);
        assert!(plan[0].spill_to.iter().all(|&(d, _)| d != 0));
        // Quotas are off by default (infinite headroom).
        assert!(plan[0].admission_quota.is_none());
    }

    #[test]
    fn spill_balancer_is_quiet_on_balanced_fleets() {
        let mut b = BalancerConfig::default().build();
        assert!(b.plan(&obs(&[50, 50, 50, 50])).is_empty());
    }

    #[test]
    fn spill_balancer_skips_chaos_and_kv_congested_receivers() {
        let cfg = BalancerConfig::default();
        let mut b = cfg.build();
        let mut o = obs(&[900, 0, 0, 0]);
        o.phase_split = true;
        o.cells[1].chaos_down = 2;
        o.cells[2].kv_backlog_us = cfg.kv_slack_us + 1;
        let plan = b.plan(&o);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].spill_to, vec![(3, 800)]);
    }

    #[test]
    fn spill_balancer_emits_quotas_with_finite_headroom() {
        let cfg = BalancerConfig {
            quota_headroom: 1.5,
            ..Default::default()
        };
        let mut b = cfg.build();
        let plan = b.plan(&obs(&[50, 50]));
        // Balanced fleet: no spill, but every cell gets a quota of
        // 2 rps × 8 live × 60 s × 1.5 = 1440.
        assert_eq!(plan.len(), 2);
        for (i, d) in plan.iter().enumerate() {
            assert_eq!(d.cell, i as u32);
            assert_eq!(d.admission_quota, Some(1440));
            assert!(d.spill_to.is_empty());
        }
    }

    #[test]
    fn spill_balancer_receiver_weight_is_free_queue_room() {
        let mut b = BalancerConfig::default().build();
        let mut o = obs(&[900, 100, 0]);
        o.cells[1].queued = 100;
        // Mean = 333; cell 1 (queued 100) and cell 2 (queued 0) are both
        // receivers, weighted by 8×100 − queued.
        let plan = b.plan(&o);
        assert_eq!(plan[0].spill_to, vec![(1, 700), (2, 800)]);
    }

    #[test]
    fn directive_new_is_noop() {
        let d = CellDirective::new(7);
        assert_eq!(d.cell, 7);
        assert!(d.admission_quota.is_none());
        assert_eq!(d.spill_permille, 0);
        assert!(d.spill_to.is_empty());
    }
}

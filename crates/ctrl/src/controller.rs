//! The control-plane contract: per-cell observations, commands, and the
//! [`Controller`] trait every policy module implements.
//!
//! The data plane (the fleet engine) builds a [`CellObs`] snapshot of one
//! cell at each control tick, hands it to the cell's controllers, and
//! applies the returned [`Command`]s. Everything a controller can see and
//! do is strictly cell-local, which is what lets controlled fleets keep
//! the engine's byte-identical-at-any-shard-count guarantee: per-cell
//! controller state lives inside the shard partition and randomized
//! policies draw from the cell's own RNG stream.

use rand::rngs::StdRng;

/// Scheduling class of a traffic source, ordered from most to least
/// protected.
///
/// The control plane treats classes asymmetrically: routing admits
/// arrivals in class order (so queue room goes to `Interactive` first),
/// and under pressure the autoscaler sheds `BestEffort` load entirely
/// before any higher class feels the squeeze — the fleet-granularity
/// consolidation the paper's §3 elasticity argument assumes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum PriorityClass {
    /// Latency-sensitive user traffic; never shed by admission control.
    Interactive,
    /// Throughput-oriented jobs with relaxed SLOs; protected from
    /// admission shedding but queued behind `Interactive`.
    Batch,
    /// Scavenger load: first to be shed when demand outruns capacity.
    BestEffort,
}

impl PriorityClass {
    /// Every class, in admission order (most protected first).
    pub const ALL: [PriorityClass; 3] = [
        PriorityClass::Interactive,
        PriorityClass::Batch,
        PriorityClass::BestEffort,
    ];

    /// Dense index for per-class arrays (`Interactive` = 0).
    pub fn index(self) -> usize {
        match self {
            PriorityClass::Interactive => 0,
            PriorityClass::Batch => 1,
            PriorityClass::BestEffort => 2,
        }
    }

    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PriorityClass::Interactive => "interactive",
            PriorityClass::Batch => "batch",
            PriorityClass::BestEffort => "best-effort",
        }
    }
}

/// Inference-phase role of one instance slot under Splitwise-style
/// phase-split serving.
///
/// A monolithic fleet runs every slot as [`Phase::Mixed`]. A phase-split
/// fleet partitions each cell into a prefill pool ([`Phase::Prefill`] —
/// receives routed arrivals, runs prompt prefills, streams the resulting
/// KV caches over the cell's KV link) and a decode pool
/// ([`Phase::Decode`] — receives transferred KV caches and runs pure
/// decode steps, isolated from prefill interference). The phase-aware
/// autoscaler rebalances the partition with [`Command::SetPhase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Interleaves prefill and decode (monolithic serving).
    Mixed,
    /// Dedicated prefill instance: owns arrival queue room, never decodes.
    Prefill,
    /// Dedicated decode instance: receives KV transfers, never prefills.
    Decode,
}

impl Phase {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Mixed => "mixed",
            Phase::Prefill => "prefill",
            Phase::Decode => "decode",
        }
    }
}

/// Administrative and health state of one instance slot, as observed by
/// controllers at a control tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Powered and serving; eligible for routed arrivals.
    Live,
    /// Parked but powered (pays the idle floor); activates at the warm
    /// latency. Under a DVFS-only policy every parked instance is warm —
    /// a monolithic GPU can only down-clock, not power off (§3).
    Warm,
    /// Parked and power-gated (zero draw); activates at the cold latency.
    Cold,
    /// Activation in flight: powered but not yet serving.
    Booting,
    /// Down for a spare swap or repair; controllers cannot act on it.
    Down,
}

/// One slot's observed state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceObs {
    /// Current mode.
    pub mode: Mode,
    /// Inference-phase role ([`Phase::Mixed`] on monolithic fleets).
    pub phase: Phase,
    /// Current DVFS operating point, as an index into
    /// [`CellObs::clock_points`] (the nominal index on fleets without a
    /// clock grid).
    pub clock: u8,
    /// Requests waiting in the slot's queue.
    pub queued: u64,
    /// Sequences currently decoding on the slot.
    pub active: u32,
}

/// One DVFS operating point of a cell's instances, as observed by
/// controllers: the clock factor, how much sustained throughput survives
/// at that clock per serving role (`1.0` at nominal; the roofline
/// compute/bandwidth split decides how much a down-clock really costs),
/// and whether step times at that clock still leave the tightest
/// per-tenant TTFT/TBT SLO targets reachable. The data plane derives all
/// of it from the same `StepCostTable` that prices serving, so policy
/// decisions and step costs can never disagree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockPoint {
    /// Clock factor (nominal = 1.0).
    pub clock: f64,
    /// Throughput retained by a mixed (monolithic) instance at this
    /// clock, relative to nominal.
    pub mixed_scale: f64,
    /// Throughput retained by a dedicated prefill instance.
    pub prefill_scale: f64,
    /// Throughput retained by a dedicated decode instance.
    pub decode_scale: f64,
    /// Whether prefill at this clock keeps every tenant's TTFT target
    /// reachable.
    pub prefill_slo_ok: bool,
    /// Whether decode steps at this clock meet every tenant's TBT target.
    pub decode_slo_ok: bool,
}

impl ClockPoint {
    /// Throughput retained at this point by an instance serving `phase`.
    pub fn scale(&self, phase: Phase) -> f64 {
        match phase {
            Phase::Mixed => self.mixed_scale,
            Phase::Prefill => self.prefill_scale,
            Phase::Decode => self.decode_scale,
        }
    }

    /// Whether this point is SLO-feasible for an instance serving
    /// `phase` (a mixed instance needs both phases to hold).
    pub fn slo_ok(&self, phase: Phase) -> bool {
        match phase {
            Phase::Mixed => self.prefill_slo_ok && self.decode_slo_ok,
            Phase::Prefill => self.prefill_slo_ok,
            Phase::Decode => self.decode_slo_ok,
        }
    }
}

/// Phase-split context of a cell at a control tick, present only when the
/// data plane serves in phase-split mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseObs {
    /// Sustainable request throughput of one dedicated prefill instance,
    /// requests/s.
    pub prefill_capacity_rps: f64,
    /// Sustainable request throughput of one dedicated decode instance,
    /// requests/s.
    pub decode_capacity_rps: f64,
    /// Outstanding KV-transfer backlog on the cell's link, microseconds
    /// of link time (the quantity back-pressure is keyed on).
    pub kv_backlog_us: u64,
}

/// A cell's state at a control-tick boundary.
///
/// Built by the data plane from cell-local state only; controllers must
/// not assume anything about other cells.
///
/// `#[non_exhaustive]`: the data plane constructs one with
/// [`CellObs::new`] and fills the public fields in; downstream crates
/// keep compiling when an observation field is added.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct CellObs {
    /// Data tick at which this control tick runs.
    pub tick: u32,
    /// Seconds covered by the elapsed control interval.
    pub interval_s: f64,
    /// Requests that arrived at the cell during the elapsed interval.
    pub arrived_since_last: u64,
    /// The same arrivals broken down by [`PriorityClass`], indexed by
    /// [`PriorityClass::index`]. Sums to `arrived_since_last` when every
    /// tenant is tagged (the multi-tenant engine always tags).
    pub arrived_by_class: [u64; 3],
    /// Sustainable request throughput of one live instance, requests/s.
    pub capacity_rps_per_instance: f64,
    /// Queue capacity per instance.
    pub max_queue: u32,
    /// Slots currently inside an announced chaos window (active
    /// correlated-outage or drain) — domain-loss state the data plane
    /// knows about, as opposed to silently failed slots. Zero on
    /// campaign-free fleets.
    pub chaos_down: u32,
    /// Phase-split context (`None` on monolithic fleets).
    pub phase_split: Option<PhaseObs>,
    /// The DVFS operating-point grid the cell's instances may serve at,
    /// ascending, last entry nominal. Empty when the data plane prices a
    /// single (nominal) clock — DVFS policies must then stand down.
    pub clock_points: Vec<ClockPoint>,
    /// Per-slot observations, indexed by cell-local slot id.
    pub slots: Vec<InstanceObs>,
}

impl CellObs {
    /// An empty observation at `tick` covering `interval_s` seconds.
    ///
    /// The struct is `#[non_exhaustive]`, so this is the only way to
    /// build one outside `litegpu-ctrl`; callers fill the remaining
    /// public fields in afterwards.
    pub fn new(tick: u32, interval_s: f64) -> Self {
        CellObs {
            tick,
            interval_s,
            arrived_since_last: 0,
            arrived_by_class: [0; 3],
            capacity_rps_per_instance: 0.0,
            max_queue: 0,
            chaos_down: 0,
            phase_split: None,
            clock_points: Vec::new(),
            slots: Vec::new(),
        }
    }

    /// Slots currently live (serving).
    pub fn live(&self) -> u32 {
        self.slots.iter().filter(|s| s.mode == Mode::Live).count() as u32
    }

    /// Slots with an activation in flight.
    pub fn booting(&self) -> u32 {
        self.slots
            .iter()
            .filter(|s| s.mode == Mode::Booting)
            .count() as u32
    }

    /// Slots not down (actionable by controllers).
    pub fn healthy(&self) -> u32 {
        self.slots.iter().filter(|s| s.mode != Mode::Down).count() as u32
    }

    /// Live slots currently in the given phase.
    pub fn live_in_phase(&self, phase: Phase) -> u32 {
        self.slots
            .iter()
            .filter(|s| s.mode == Mode::Live && s.phase == phase)
            .count() as u32
    }

    /// Total queued requests across the cell.
    pub fn queued_total(&self) -> u64 {
        self.slots.iter().map(|s| s.queued).sum()
    }
}

/// An action a controller asks the data plane to apply.
///
/// Commands are applied in emission order; a command that does not match
/// the slot's current mode (e.g. parking an already-parked slot) is
/// ignored, so controllers may re-assert state idempotently.
///
/// `#[non_exhaustive]`: data planes outside this crate must keep a
/// wildcard arm when matching, so a new command variant is not a
/// breaking change (unknown commands are ignored, which is safe — every
/// command is advisory).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Command {
    /// Start activating a parked slot (warm or cold boot latency is
    /// decided by the data plane from the slot's current mode).
    Activate {
        /// Cell-local slot id.
        slot: u32,
    },
    /// Park an idle live slot (it stops receiving arrivals and serving).
    Park {
        /// Cell-local slot id.
        slot: u32,
    },
    /// Keep a parked slot powered for fast activation.
    SetWarm {
        /// Cell-local slot id.
        slot: u32,
    },
    /// Power-gate a parked slot (zero energy, slow activation).
    SetCold {
        /// Cell-local slot id.
        slot: u32,
    },
    /// Replace the cell's routing weights (one entry per slot; arrivals
    /// are apportioned over live slots proportionally to their weight).
    SetWeights {
        /// Per-slot weights, indexed by cell-local slot id.
        weights: Vec<u64>,
    },
    /// Set the cell's admission policy for [`PriorityClass::BestEffort`]
    /// traffic. While disallowed, the data plane sheds every best-effort
    /// arrival at the cell boundary (counted per tenant), protecting the
    /// higher classes' queue room and SLOs.
    SetAdmission {
        /// Whether best-effort arrivals are admitted.
        allow_best_effort: bool,
    },
    /// Move a slot between the prefill and decode pools (phase-split
    /// serving only). The data plane applies the change only when the
    /// slot is idle — migrating live KV caches or queued prompts between
    /// phases is not modeled — so controllers should re-assert the
    /// desired partition idempotently.
    SetPhase {
        /// Cell-local slot id.
        slot: u32,
        /// The pool the slot should join.
        phase: Phase,
    },
    /// Retune a slot's DVFS operating point. The data plane re-prices the
    /// slot's step costs (and its dynamic power draw) from the indexed
    /// [`ClockPoint`] starting at the next data tick; commands with an
    /// out-of-grid index are ignored. Applies to serving slots only —
    /// parked capacity is the power gater's business, not the clock's.
    SetClock {
        /// Cell-local slot id.
        slot: u32,
        /// Index into [`CellObs::clock_points`].
        clock: u8,
    },
}

impl Command {
    /// Stable snake_case command name (trace-event labels, logs).
    pub fn kind(&self) -> &'static str {
        match self {
            Command::Activate { .. } => "activate",
            Command::Park { .. } => "park",
            Command::SetWarm { .. } => "set_warm",
            Command::SetCold { .. } => "set_cold",
            Command::SetWeights { .. } => "set_weights",
            Command::SetAdmission { .. } => "set_admission",
            Command::SetPhase { .. } => "set_phase",
            Command::SetClock { .. } => "set_clock",
        }
    }

    /// The cell-local slot the command targets, when it targets one
    /// (cell-wide commands like `SetWeights`/`SetAdmission` return
    /// `None`).
    pub fn slot(&self) -> Option<u32> {
        match *self {
            Command::Activate { slot }
            | Command::Park { slot }
            | Command::SetWarm { slot }
            | Command::SetCold { slot }
            | Command::SetPhase { slot, .. }
            | Command::SetClock { slot, .. } => Some(slot),
            Command::SetWeights { .. } | Command::SetAdmission { .. } => None,
        }
    }
}

/// A deterministic per-cell control policy.
///
/// `control` runs once per control tick. `pending` carries the commands
/// emitted earlier in the same control tick by upstream policies (the
/// power gater, for example, must see the autoscaler's parks to keep the
/// warm pool consistent). `rng` is the cell's own control-plane stream —
/// the only randomness a policy may use without breaking the engine's
/// shard-count determinism.
pub trait Controller {
    /// Short policy name (for labels and reports).
    fn name(&self) -> &'static str;

    /// Computes this policy's commands for one control tick.
    fn control(&mut self, obs: &CellObs, pending: &[Command], rng: &mut StdRng) -> Vec<Command>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_kind_and_slot_cover_every_variant() {
        let cmds = [
            (Command::Activate { slot: 3 }, "activate", Some(3)),
            (Command::Park { slot: 1 }, "park", Some(1)),
            (Command::SetWarm { slot: 0 }, "set_warm", Some(0)),
            (Command::SetCold { slot: 9 }, "set_cold", Some(9)),
            (
                Command::SetWeights { weights: vec![1] },
                "set_weights",
                None,
            ),
            (
                Command::SetAdmission {
                    allow_best_effort: false,
                },
                "set_admission",
                None,
            ),
            (
                Command::SetPhase {
                    slot: 2,
                    phase: Phase::Prefill,
                },
                "set_phase",
                Some(2),
            ),
            (
                Command::SetClock { slot: 4, clock: 1 },
                "set_clock",
                Some(4),
            ),
        ];
        for (cmd, kind, slot) in cmds {
            assert_eq!(cmd.kind(), kind);
            assert_eq!(cmd.slot(), slot);
        }
    }

    #[test]
    fn priority_classes_are_ordered_and_indexed() {
        assert!(PriorityClass::Interactive < PriorityClass::Batch);
        assert!(PriorityClass::Batch < PriorityClass::BestEffort);
        for (i, c) in PriorityClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(PriorityClass::BestEffort.label(), "best-effort");
    }

    #[test]
    fn obs_aggregates_count_modes() {
        let obs = CellObs {
            tick: 0,
            interval_s: 5.0,
            arrived_since_last: 0,
            arrived_by_class: [0; 3],
            capacity_rps_per_instance: 2.0,
            max_queue: 100,
            chaos_down: 0,
            phase_split: None,
            clock_points: Vec::new(),
            slots: vec![
                InstanceObs {
                    mode: Mode::Live,
                    phase: Phase::Prefill,
                    clock: 0,
                    queued: 3,
                    active: 1,
                },
                InstanceObs {
                    mode: Mode::Booting,
                    phase: Phase::Decode,
                    clock: 0,
                    queued: 0,
                    active: 0,
                },
                InstanceObs {
                    mode: Mode::Cold,
                    phase: Phase::Decode,
                    clock: 0,
                    queued: 0,
                    active: 0,
                },
                InstanceObs {
                    mode: Mode::Down,
                    phase: Phase::Mixed,
                    clock: 0,
                    queued: 7,
                    active: 0,
                },
            ],
        };
        assert_eq!(obs.live(), 1);
        assert_eq!(obs.booting(), 1);
        assert_eq!(obs.healthy(), 3);
        assert_eq!(obs.queued_total(), 10);
        assert_eq!(obs.live_in_phase(Phase::Prefill), 1);
        assert_eq!(obs.live_in_phase(Phase::Decode), 0);
    }

    #[test]
    fn phase_labels_are_stable() {
        assert_eq!(Phase::Mixed.label(), "mixed");
        assert_eq!(Phase::Prefill.label(), "prefill");
        assert_eq!(Phase::Decode.label(), "decode");
    }

    #[test]
    fn clock_point_scale_and_slo_are_phase_selected() {
        let p = ClockPoint {
            clock: 0.8,
            mixed_scale: 0.85,
            prefill_scale: 0.8,
            decode_scale: 0.97,
            prefill_slo_ok: false,
            decode_slo_ok: true,
        };
        assert_eq!(p.scale(Phase::Mixed), 0.85);
        assert_eq!(p.scale(Phase::Prefill), 0.8);
        assert_eq!(p.scale(Phase::Decode), 0.97);
        assert!(p.slo_ok(Phase::Decode));
        assert!(!p.slo_ok(Phase::Prefill));
        // A mixed instance needs both phases SLO-feasible.
        assert!(!p.slo_ok(Phase::Mixed));
    }
}

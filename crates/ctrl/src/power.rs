//! Power gating of parked instances, reusing the cluster-level
//! load-following vocabulary ([`litegpu_cluster::power_mgmt::Policy`]).
//!
//! The gater decides what "parked" costs. Under [`Policy::DvfsAll`] — the
//! only option a monolithic-GPU fleet has (§3: "down-clocking all SMs") —
//! a parked instance can merely down-clock, so it stays warm and keeps
//! paying its idle floor. Under the gating policies that Lite-GPU
//! granularity enables ([`Policy::GateIdle`], [`Policy::GateToEfficiency`])
//! parked instances power off entirely, except for a configurable warm
//! pool kept powered to hide the cold-boot latency from the autoscaler.

use crate::controller::{CellObs, Command, Controller, Mode};
use litegpu_cluster::power_mgmt::Policy;
use rand::rngs::StdRng;

/// Power-gating policy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConfig {
    /// How parked capacity is powered. [`Policy::DvfsAll`] keeps every
    /// parked instance warm (idle floor); the gating policies power
    /// parked instances off beyond the warm pool.
    pub policy: Policy,
    /// Parked instances kept warm (powered) per cell under a gating
    /// policy, to absorb demand spikes at the warm-boot latency.
    pub warm_pool: u32,
}

impl Default for PowerConfig {
    fn default() -> Self {
        Self {
            policy: Policy::GateToEfficiency,
            warm_pool: 1,
        }
    }
}

/// The per-cell power gater.
#[derive(Debug, Clone)]
pub struct PowerGater {
    cfg: PowerConfig,
}

impl PowerGater {
    /// Builds the gater.
    pub fn new(cfg: PowerConfig) -> Self {
        Self { cfg }
    }

    /// Whether the policy can power parked instances off at all.
    pub fn gates(&self) -> bool {
        self.cfg.policy != Policy::DvfsAll
    }
}

impl Controller for PowerGater {
    fn name(&self) -> &'static str {
        "gate"
    }

    fn control(&mut self, obs: &CellObs, pending: &[Command], _rng: &mut StdRng) -> Vec<Command> {
        // The parked set once pending commands land: currently parked
        // slots, plus this tick's parks, minus this tick's activations.
        let mut parked: Vec<u32> = obs
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.mode, Mode::Warm | Mode::Cold))
            .map(|(i, _)| i as u32)
            .collect();
        for cmd in pending {
            match cmd {
                Command::Park { slot } => parked.push(*slot),
                Command::Activate { slot } => parked.retain(|s| s != slot),
                _ => {}
            }
        }
        parked.sort_unstable();
        parked.dedup();

        let warm_quota = if self.gates() {
            self.cfg.warm_pool as usize
        } else {
            parked.len() // DVFS-only: everything parked stays powered.
        };
        parked
            .into_iter()
            .enumerate()
            .map(|(rank, slot)| {
                if rank < warm_quota {
                    Command::SetWarm { slot }
                } else {
                    Command::SetCold { slot }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::InstanceObs;
    use rand::SeedableRng;

    fn obs(modes: &[Mode]) -> CellObs {
        CellObs {
            tick: 0,
            interval_s: 5.0,
            arrived_since_last: 0,
            arrived_by_class: [0; 3],
            capacity_rps_per_instance: 2.0,
            max_queue: 100,
            chaos_down: 0,
            phase_split: None,
            clock_points: Vec::new(),
            slots: modes
                .iter()
                .map(|&mode| InstanceObs {
                    mode,
                    phase: crate::controller::Phase::Mixed,
                    clock: 0,
                    queued: 0,
                    active: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn gating_policy_keeps_only_the_warm_pool_powered() {
        let mut g = PowerGater::new(PowerConfig {
            policy: Policy::GateToEfficiency,
            warm_pool: 1,
        });
        let mut rng = StdRng::seed_from_u64(1);
        let o = obs(&[Mode::Live, Mode::Cold, Mode::Warm, Mode::Warm]);
        let cmds = g.control(&o, &[], &mut rng);
        assert_eq!(
            cmds,
            vec![
                Command::SetWarm { slot: 1 },
                Command::SetCold { slot: 2 },
                Command::SetCold { slot: 3 }
            ]
        );
    }

    #[test]
    fn dvfs_policy_keeps_every_parked_slot_warm() {
        let mut g = PowerGater::new(PowerConfig {
            policy: Policy::DvfsAll,
            warm_pool: 1,
        });
        assert!(!g.gates());
        let mut rng = StdRng::seed_from_u64(1);
        let o = obs(&[Mode::Cold, Mode::Live, Mode::Cold]);
        let cmds = g.control(&o, &[], &mut rng);
        assert_eq!(
            cmds,
            vec![Command::SetWarm { slot: 0 }, Command::SetWarm { slot: 2 }]
        );
    }

    #[test]
    fn pending_parks_and_activations_adjust_the_pool() {
        let mut g = PowerGater::new(PowerConfig {
            policy: Policy::GateIdle,
            warm_pool: 2,
        });
        let mut rng = StdRng::seed_from_u64(1);
        let o = obs(&[Mode::Live, Mode::Live, Mode::Warm, Mode::Cold]);
        let pending = vec![
            Command::Park { slot: 1 },
            Command::Activate { slot: 2 },
            Command::SetWeights { weights: vec![] },
        ];
        let cmds = g.control(&o, &pending, &mut rng);
        // Parked set after pending: {1, 3}; warm pool of 2 covers both.
        assert_eq!(
            cmds,
            vec![Command::SetWarm { slot: 1 }, Command::SetWarm { slot: 3 }]
        );
    }
}

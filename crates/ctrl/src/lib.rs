//! `litegpu-ctrl` — a deterministic fleet control plane.
//!
//! The paper's §3 argument is that Lite-GPUs win at the *fleet* level:
//! finer-grained resource management, per-unit power gating, and small
//! blast radii. Those are control-plane properties, so this crate models
//! the control plane explicitly: a **control tick** runs between the
//! fleet engine's data ticks, observing each cell ([`CellObs`]) and
//! issuing [`Command`]s through three policy modules wired into a common
//! [`Controller`] trait:
//!
//! - [`autoscale::Autoscaler`] — reactive scaling of each cell's live
//!   instance pool against observed traffic, with warm/cold scale-out
//!   latency, a warm pool, and priority-aware admission control: when
//!   total demand outruns even the fully scaled-out cell,
//!   [`PriorityClass::BestEffort`] traffic is shed before the guaranteed
//!   classes feel pressure;
//! - [`power::PowerGater`] — decides what parked capacity costs, reusing
//!   [`litegpu_cluster::power_mgmt::Policy`]: DVFS-only fleets keep
//!   parked instances at their idle floor, gating fleets power them off;
//! - [`route::Router`] — rebalances each cell's arrivals across its live
//!   instances, weighted by free capacity, so failures and parking don't
//!   strand traffic.
//!
//! All three are **phase-aware**: on a Splitwise-style phase-split fleet
//! (the data plane sets [`CellObs::phase_split`] and tags each slot with
//! a [`Phase`]), the autoscaler sizes the prefill and decode pools
//! independently and rebalances the partition with
//! [`Command::SetPhase`], and the router grants queue room to the
//! prefill pool only — decode instances receive their work over the
//! cell's KV link, never the front door.
//!
//! The control plane is **two-level**: above the per-cell stack, the
//! [`fleet`] module defines the fleet-scope [`FleetController`] trait —
//! once per fleet tick it sees a read-only [`FleetObs`] snapshot of
//! every cell and emits per-cell [`CellDirective`]s (admission quotas
//! and cross-cell spill-over routes). See the [`fleet`] module docs for
//! the snapshot → pure function → commands contract that keeps fleet
//! feedback compatible with byte-identical sharded execution.
//!
//! Everything is strictly cell-local and integer-exact where it touches
//! the data plane (largest-remainder apportionment, integer energy
//! accumulators), so a controlled fleet keeps `litegpu-fleet`'s
//! byte-identical-report-at-any-shard-count guarantee.

pub mod autoscale;
pub mod controller;
pub mod dvfs;
pub mod fleet;
pub mod power;
pub mod route;

pub use autoscale::{Autoscaler, AutoscalerConfig};
pub use controller::{
    CellObs, ClockPoint, Command, Controller, InstanceObs, Mode, Phase, PhaseObs, PriorityClass,
};
pub use dvfs::{DvfsConfig, DvfsController};
pub use fleet::{BalancerConfig, CellDirective, FleetCellObs, FleetController, FleetObs};
pub use litegpu_cluster::power_mgmt::Policy;
pub use power::{PowerConfig, PowerGater};
pub use route::{apportion, apportion_into, Router, RouterConfig};

use rand::rngs::StdRng;

/// Control-plane configuration: which policies run, and how often.
///
/// `#[non_exhaustive]`: construct one with [`CtrlConfig::builder`] (or
/// [`CtrlConfig::demo`]) so the next policy addition is not a breaking
/// change across every bin and test.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct CtrlConfig {
    /// Seconds between control ticks (rounded to whole data ticks by the
    /// engine, minimum one).
    pub control_interval_s: f64,
    /// Autoscaler policy; requires `router` (parked instances' traffic
    /// must be re-routed somewhere).
    pub autoscaler: Option<AutoscalerConfig>,
    /// Serving-time DVFS: per-pool operating-point selection for live
    /// instances. Takes effect only on a data plane that priced a clock
    /// grid (`FleetConfig` enables that whenever this is set).
    pub dvfs: Option<DvfsConfig>,
    /// Power-gating policy for parked instances.
    pub power: Option<PowerConfig>,
    /// Cell-level arrival routing.
    pub router: Option<RouterConfig>,
    /// Fleet-scope balancer: cross-cell spill-over routing and admission
    /// quotas, run once per fleet tick (see [`fleet`]). `None` keeps
    /// cells fully isolated.
    pub balancer: Option<BalancerConfig>,
}

impl CtrlConfig {
    /// A builder starting from the empty control plane (5 s control
    /// ticks, no policies).
    ///
    /// ```
    /// use litegpu_ctrl::{BalancerConfig, CtrlConfig, RouterConfig};
    ///
    /// let cfg = CtrlConfig::builder()
    ///     .route(RouterConfig::default())
    ///     .balancer(BalancerConfig::default())
    ///     .build();
    /// assert_eq!(cfg.label(), "route+balancer");
    /// ```
    pub fn builder() -> CtrlConfigBuilder {
        CtrlConfigBuilder::default()
    }

    /// The demo control plane: 5 s control ticks, default autoscaler and
    /// router, and the given power policy — [`Policy::DvfsAll`] for
    /// monolithic-GPU fleets, [`Policy::GateToEfficiency`] for Lite.
    pub fn demo(policy: Policy) -> Self {
        Self::builder()
            .autoscale(AutoscalerConfig::default())
            .power(PowerConfig {
                policy,
                warm_pool: 1,
            })
            .route(RouterConfig::default())
            .build()
    }

    /// Adds the default serving-time DVFS policy to this configuration.
    pub fn with_dvfs(mut self) -> Self {
        self.dvfs = Some(DvfsConfig::default());
        self
    }

    /// Adds a fleet-scope balancer to this configuration.
    pub fn with_balancer(mut self, balancer: BalancerConfig) -> Self {
        self.balancer = Some(balancer);
        self
    }

    /// Validates the configuration; returns a static description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), &'static str> {
        if !(self.control_interval_s.is_finite() && self.control_interval_s > 0.0) {
            return Err("control_interval_s must be finite and positive");
        }
        if self.autoscaler.is_some() && self.router.is_none() {
            return Err("the autoscaler requires the router: parked instances' arrivals must be rebalanced to live ones");
        }
        if let Some(a) = &self.autoscaler {
            if !(a.target_util > 0.0 && a.target_util <= 1.0) {
                return Err("autoscaler target_util must be in (0, 1]");
            }
            if !(a.ewma_alpha > 0.0 && a.ewma_alpha <= 1.0) {
                return Err("autoscaler ewma_alpha must be in (0, 1]");
            }
            if !(a.cold_start_s.is_finite() && a.cold_start_s >= 0.0) {
                return Err("autoscaler cold_start_s must be finite and non-negative");
            }
            if !(a.warm_start_s.is_finite() && a.warm_start_s >= 0.0) {
                return Err("autoscaler warm_start_s must be finite and non-negative");
            }
        }
        if let Some(d) = &self.dvfs {
            if !(d.target_util > 0.0 && d.target_util <= 1.0) {
                return Err("dvfs target_util must be in (0, 1]");
            }
            if !(d.ewma_alpha > 0.0 && d.ewma_alpha <= 1.0) {
                return Err("dvfs ewma_alpha must be in (0, 1]");
            }
        }
        if let Some(b) = &self.balancer {
            b.validate()?;
        }
        Ok(())
    }

    /// Human-readable policy label for reports, e.g.
    /// `autoscale+gate(GateToEfficiency)+route`.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.autoscaler.is_some() {
            parts.push("autoscale".to_string());
        }
        if self.dvfs.is_some() {
            parts.push("dvfs".to_string());
        }
        if let Some(p) = &self.power {
            parts.push(format!("gate({:?})", p.policy));
        }
        if self.router.is_some() {
            parts.push("route".to_string());
        }
        if self.balancer.is_some() {
            parts.push("balancer".to_string());
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }

    /// Instantiates one cell's controller stack (fresh policy state).
    pub fn build(&self) -> ControllerStack {
        ControllerStack {
            controllers: [
                self.autoscaler
                    .map(|c| Box::new(Autoscaler::new(c)) as Box<dyn Controller>),
                self.dvfs
                    .map(|c| Box::new(DvfsController::new(c)) as Box<dyn Controller>),
                self.power
                    .map(|c| Box::new(PowerGater::new(c)) as Box<dyn Controller>),
                self.router
                    .map(|c| Box::new(Router::new(c)) as Box<dyn Controller>),
            ]
            .into_iter()
            .flatten()
            .collect(),
        }
    }
}

/// Builder for [`CtrlConfig`] (which is `#[non_exhaustive]` and so
/// cannot be constructed literally outside this crate).
///
/// Starts from the empty control plane: 5 s control ticks, every policy
/// off. Each setter enables one policy; `build` returns the finished
/// configuration (validate separately with [`CtrlConfig::validate`]).
#[derive(Debug, Clone)]
pub struct CtrlConfigBuilder {
    cfg: CtrlConfig,
}

impl Default for CtrlConfigBuilder {
    fn default() -> Self {
        CtrlConfigBuilder {
            cfg: CtrlConfig {
                control_interval_s: 5.0,
                autoscaler: None,
                dvfs: None,
                power: None,
                router: None,
                balancer: None,
            },
        }
    }
}

impl CtrlConfigBuilder {
    /// Sets the seconds between control ticks.
    pub fn control_interval(mut self, seconds: f64) -> Self {
        self.cfg.control_interval_s = seconds;
        self
    }

    /// Enables the reactive autoscaler.
    pub fn autoscale(mut self, cfg: AutoscalerConfig) -> Self {
        self.cfg.autoscaler = Some(cfg);
        self
    }

    /// Enables serving-time DVFS.
    pub fn dvfs(mut self, cfg: DvfsConfig) -> Self {
        self.cfg.dvfs = Some(cfg);
        self
    }

    /// Enables power gating of parked instances.
    pub fn power(mut self, cfg: PowerConfig) -> Self {
        self.cfg.power = Some(cfg);
        self
    }

    /// Enables cell-level arrival routing.
    pub fn route(mut self, cfg: RouterConfig) -> Self {
        self.cfg.router = Some(cfg);
        self
    }

    /// Enables the fleet-scope spill-over balancer.
    pub fn balancer(mut self, cfg: BalancerConfig) -> Self {
        self.cfg.balancer = Some(cfg);
        self
    }

    /// Returns the finished configuration.
    pub fn build(self) -> CtrlConfig {
        self.cfg
    }
}

/// An ordered stack of policy modules driving one cell.
///
/// Policies run in a fixed order (autoscaler → DVFS → power gater →
/// router); each sees the commands emitted earlier in the same control
/// tick, so e.g. the DVFS policy tunes the pool partition the autoscaler
/// just decided, and the gater keeps the warm pool consistent with this
/// tick's parks.
pub struct ControllerStack {
    controllers: Vec<Box<dyn Controller>>,
}

impl ControllerStack {
    /// Runs every policy for one control tick and returns the combined
    /// command list, in emission order.
    pub fn control(&mut self, obs: &CellObs, rng: &mut StdRng) -> Vec<Command> {
        let mut cmds = Vec::new();
        for c in &mut self.controllers {
            let more = c.control(obs, &cmds, rng);
            cmds.extend(more);
        }
        cmds
    }

    /// Number of active policy modules.
    pub fn len(&self) -> usize {
        self.controllers.len()
    }

    /// Whether the stack has no policies (control ticks are no-ops).
    pub fn is_empty(&self) -> bool {
        self.controllers.is_empty()
    }
}

impl core::fmt::Debug for ControllerStack {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let names: Vec<&str> = self.controllers.iter().map(|c| c.name()).collect();
        write!(f, "ControllerStack({names:?})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn demo_config_validates_and_labels() {
        let c = CtrlConfig::demo(Policy::GateToEfficiency);
        c.validate().unwrap();
        assert_eq!(c.label(), "autoscale+gate(GateToEfficiency)+route");
        assert_eq!(c.build().len(), 3);
        let d = CtrlConfig::demo(Policy::DvfsAll);
        assert_eq!(d.label(), "autoscale+gate(DvfsAll)+route");
    }

    #[test]
    fn autoscaler_without_router_rejected() {
        let mut c = CtrlConfig::demo(Policy::GateToEfficiency);
        c.router = None;
        assert!(c.validate().is_err());
        c.autoscaler = None;
        c.validate().unwrap(); // Gating alone is fine.
        assert_eq!(c.label(), "gate(GateToEfficiency)");
    }

    #[test]
    fn bad_parameters_rejected() {
        let mut c = CtrlConfig::demo(Policy::DvfsAll);
        c.control_interval_s = 0.0;
        assert!(c.validate().is_err());
        let mut c = CtrlConfig::demo(Policy::DvfsAll);
        c.autoscaler.as_mut().unwrap().target_util = 1.5;
        assert!(c.validate().is_err());
        let mut c = CtrlConfig::demo(Policy::DvfsAll);
        c.autoscaler.as_mut().unwrap().ewma_alpha = 0.0;
        assert!(c.validate().is_err());
        let mut c = CtrlConfig::demo(Policy::DvfsAll);
        c.autoscaler.as_mut().unwrap().cold_start_s = f64::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    fn stack_feeds_pending_commands_forward() {
        // With all three policies on a quiet cell, the autoscaler parks,
        // the gater warms the pool (seeing the pending parks), and the
        // router zeroes the weights of non-live slots.
        let cfg = CtrlConfig::demo(Policy::GateToEfficiency);
        let mut stack = cfg.build();
        let mut rng = StdRng::seed_from_u64(3);
        let obs = CellObs {
            tick: 12,
            interval_s: 5.0,
            arrived_since_last: 0,
            arrived_by_class: [0; 3],
            capacity_rps_per_instance: 2.0,
            max_queue: 50,
            chaos_down: 0,
            phase_split: None,
            clock_points: Vec::new(),
            slots: vec![
                InstanceObs {
                    mode: Mode::Live,
                    phase: Phase::Mixed,
                    clock: 0,
                    queued: 0,
                    active: 0,
                },
                InstanceObs {
                    mode: Mode::Live,
                    phase: Phase::Mixed,
                    clock: 0,
                    queued: 0,
                    active: 0,
                },
            ],
        };
        let cmds = stack.control(&obs, &mut rng);
        assert!(cmds.contains(&Command::Park { slot: 1 }));
        assert!(cmds.contains(&Command::SetWarm { slot: 1 }));
        // Router ran on the *observed* modes (both live), so the weight
        // snapshot still covers both; the data plane masks non-live slots
        // per data tick.
        assert!(cmds
            .iter()
            .any(|c| matches!(c, Command::SetWeights { weights } if weights.len() == 2)));
        let empty = CtrlConfig::builder().build();
        assert!(empty.build().is_empty());
        assert_eq!(empty.label(), "none");
    }

    #[test]
    fn builder_assembles_every_policy() {
        let c = CtrlConfig::builder()
            .control_interval(2.5)
            .autoscale(AutoscalerConfig::default())
            .dvfs(DvfsConfig::default())
            .power(PowerConfig {
                policy: Policy::GateToEfficiency,
                warm_pool: 1,
            })
            .route(RouterConfig::default())
            .balancer(BalancerConfig::default())
            .build();
        c.validate().unwrap();
        assert_eq!(c.control_interval_s, 2.5);
        assert_eq!(
            c.label(),
            "autoscale+dvfs+gate(GateToEfficiency)+route+balancer"
        );
        // The balancer runs at the fleet scope, not in the per-cell stack.
        assert_eq!(c.build().len(), 4);
    }

    #[test]
    fn balancer_config_validated_through_ctrl_config() {
        let mut c = CtrlConfig::builder()
            .balancer(BalancerConfig::default())
            .build();
        c.validate().unwrap();
        c.balancer.as_mut().unwrap().spill_permille = 1001;
        assert!(c.validate().is_err());
    }

    #[test]
    fn dvfs_labels_builds_and_validates() {
        let c = CtrlConfig::demo(Policy::GateToEfficiency).with_dvfs();
        c.validate().unwrap();
        assert_eq!(c.label(), "autoscale+dvfs+gate(GateToEfficiency)+route");
        assert_eq!(c.build().len(), 4);
        let mut bad = c.clone();
        bad.dvfs.as_mut().unwrap().target_util = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = c;
        bad.dvfs.as_mut().unwrap().ewma_alpha = 1.5;
        assert!(bad.validate().is_err());
    }
}

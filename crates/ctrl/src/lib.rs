//! `litegpu-ctrl` — a deterministic fleet control plane.
//!
//! The paper's §3 argument is that Lite-GPUs win at the *fleet* level:
//! finer-grained resource management, per-unit power gating, and small
//! blast radii. Those are control-plane properties, so this crate models
//! the control plane explicitly: a **control tick** runs between the
//! fleet engine's data ticks, observing each cell ([`CellObs`]) and
//! issuing [`Command`]s through three policy modules wired into a common
//! [`Controller`] trait:
//!
//! - [`autoscale::Autoscaler`] — reactive scaling of each cell's live
//!   instance pool against observed traffic, with warm/cold scale-out
//!   latency, a warm pool, and priority-aware admission control: when
//!   total demand outruns even the fully scaled-out cell,
//!   [`PriorityClass::BestEffort`] traffic is shed before the guaranteed
//!   classes feel pressure;
//! - [`power::PowerGater`] — decides what parked capacity costs, reusing
//!   [`litegpu_cluster::power_mgmt::Policy`]: DVFS-only fleets keep
//!   parked instances at their idle floor, gating fleets power them off;
//! - [`route::Router`] — rebalances each cell's arrivals across its live
//!   instances, weighted by free capacity, so failures and parking don't
//!   strand traffic.
//!
//! All three are **phase-aware**: on a Splitwise-style phase-split fleet
//! (the data plane sets [`CellObs::phase_split`] and tags each slot with
//! a [`Phase`]), the autoscaler sizes the prefill and decode pools
//! independently and rebalances the partition with
//! [`Command::SetPhase`], and the router grants queue room to the
//! prefill pool only — decode instances receive their work over the
//! cell's KV link, never the front door.
//!
//! Everything is strictly cell-local and integer-exact where it touches
//! the data plane (largest-remainder apportionment, integer energy
//! accumulators), so a controlled fleet keeps `litegpu-fleet`'s
//! byte-identical-report-at-any-shard-count guarantee.

pub mod autoscale;
pub mod controller;
pub mod dvfs;
pub mod power;
pub mod route;

pub use autoscale::{Autoscaler, AutoscalerConfig};
pub use controller::{
    CellObs, ClockPoint, Command, Controller, InstanceObs, Mode, Phase, PhaseObs, PriorityClass,
};
pub use dvfs::{DvfsConfig, DvfsController};
pub use litegpu_cluster::power_mgmt::Policy;
pub use power::{PowerConfig, PowerGater};
pub use route::{apportion, apportion_into, Router, RouterConfig};

use rand::rngs::StdRng;

/// Control-plane configuration: which policies run, and how often.
#[derive(Debug, Clone, PartialEq)]
pub struct CtrlConfig {
    /// Seconds between control ticks (rounded to whole data ticks by the
    /// engine, minimum one).
    pub control_interval_s: f64,
    /// Autoscaler policy; requires `router` (parked instances' traffic
    /// must be re-routed somewhere).
    pub autoscaler: Option<AutoscalerConfig>,
    /// Serving-time DVFS: per-pool operating-point selection for live
    /// instances. Takes effect only on a data plane that priced a clock
    /// grid (`FleetConfig` enables that whenever this is set).
    pub dvfs: Option<DvfsConfig>,
    /// Power-gating policy for parked instances.
    pub power: Option<PowerConfig>,
    /// Cell-level arrival routing.
    pub router: Option<RouterConfig>,
}

impl CtrlConfig {
    /// The demo control plane: 5 s control ticks, default autoscaler and
    /// router, and the given power policy — [`Policy::DvfsAll`] for
    /// monolithic-GPU fleets, [`Policy::GateToEfficiency`] for Lite.
    pub fn demo(policy: Policy) -> Self {
        Self {
            control_interval_s: 5.0,
            autoscaler: Some(AutoscalerConfig::default()),
            dvfs: None,
            power: Some(PowerConfig {
                policy,
                warm_pool: 1,
            }),
            router: Some(RouterConfig::default()),
        }
    }

    /// Adds the default serving-time DVFS policy to this configuration.
    pub fn with_dvfs(mut self) -> Self {
        self.dvfs = Some(DvfsConfig::default());
        self
    }

    /// Validates the configuration; returns a static description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), &'static str> {
        if !(self.control_interval_s.is_finite() && self.control_interval_s > 0.0) {
            return Err("control_interval_s must be finite and positive");
        }
        if self.autoscaler.is_some() && self.router.is_none() {
            return Err("the autoscaler requires the router: parked instances' arrivals must be rebalanced to live ones");
        }
        if let Some(a) = &self.autoscaler {
            if !(a.target_util > 0.0 && a.target_util <= 1.0) {
                return Err("autoscaler target_util must be in (0, 1]");
            }
            if !(a.ewma_alpha > 0.0 && a.ewma_alpha <= 1.0) {
                return Err("autoscaler ewma_alpha must be in (0, 1]");
            }
            if !(a.cold_start_s.is_finite() && a.cold_start_s >= 0.0) {
                return Err("autoscaler cold_start_s must be finite and non-negative");
            }
            if !(a.warm_start_s.is_finite() && a.warm_start_s >= 0.0) {
                return Err("autoscaler warm_start_s must be finite and non-negative");
            }
        }
        if let Some(d) = &self.dvfs {
            if !(d.target_util > 0.0 && d.target_util <= 1.0) {
                return Err("dvfs target_util must be in (0, 1]");
            }
            if !(d.ewma_alpha > 0.0 && d.ewma_alpha <= 1.0) {
                return Err("dvfs ewma_alpha must be in (0, 1]");
            }
        }
        Ok(())
    }

    /// Human-readable policy label for reports, e.g.
    /// `autoscale+gate(GateToEfficiency)+route`.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.autoscaler.is_some() {
            parts.push("autoscale".to_string());
        }
        if self.dvfs.is_some() {
            parts.push("dvfs".to_string());
        }
        if let Some(p) = &self.power {
            parts.push(format!("gate({:?})", p.policy));
        }
        if self.router.is_some() {
            parts.push("route".to_string());
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }

    /// Instantiates one cell's controller stack (fresh policy state).
    pub fn build(&self) -> ControllerStack {
        ControllerStack {
            controllers: [
                self.autoscaler
                    .map(|c| Box::new(Autoscaler::new(c)) as Box<dyn Controller>),
                self.dvfs
                    .map(|c| Box::new(DvfsController::new(c)) as Box<dyn Controller>),
                self.power
                    .map(|c| Box::new(PowerGater::new(c)) as Box<dyn Controller>),
                self.router
                    .map(|c| Box::new(Router::new(c)) as Box<dyn Controller>),
            ]
            .into_iter()
            .flatten()
            .collect(),
        }
    }
}

/// An ordered stack of policy modules driving one cell.
///
/// Policies run in a fixed order (autoscaler → DVFS → power gater →
/// router); each sees the commands emitted earlier in the same control
/// tick, so e.g. the DVFS policy tunes the pool partition the autoscaler
/// just decided, and the gater keeps the warm pool consistent with this
/// tick's parks.
pub struct ControllerStack {
    controllers: Vec<Box<dyn Controller>>,
}

impl ControllerStack {
    /// Runs every policy for one control tick and returns the combined
    /// command list, in emission order.
    pub fn control(&mut self, obs: &CellObs, rng: &mut StdRng) -> Vec<Command> {
        let mut cmds = Vec::new();
        for c in &mut self.controllers {
            let more = c.control(obs, &cmds, rng);
            cmds.extend(more);
        }
        cmds
    }

    /// Number of active policy modules.
    pub fn len(&self) -> usize {
        self.controllers.len()
    }

    /// Whether the stack has no policies (control ticks are no-ops).
    pub fn is_empty(&self) -> bool {
        self.controllers.is_empty()
    }
}

impl core::fmt::Debug for ControllerStack {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let names: Vec<&str> = self.controllers.iter().map(|c| c.name()).collect();
        write!(f, "ControllerStack({names:?})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn demo_config_validates_and_labels() {
        let c = CtrlConfig::demo(Policy::GateToEfficiency);
        c.validate().unwrap();
        assert_eq!(c.label(), "autoscale+gate(GateToEfficiency)+route");
        assert_eq!(c.build().len(), 3);
        let d = CtrlConfig::demo(Policy::DvfsAll);
        assert_eq!(d.label(), "autoscale+gate(DvfsAll)+route");
    }

    #[test]
    fn autoscaler_without_router_rejected() {
        let mut c = CtrlConfig::demo(Policy::GateToEfficiency);
        c.router = None;
        assert!(c.validate().is_err());
        c.autoscaler = None;
        c.validate().unwrap(); // Gating alone is fine.
        assert_eq!(c.label(), "gate(GateToEfficiency)");
    }

    #[test]
    fn bad_parameters_rejected() {
        let mut c = CtrlConfig::demo(Policy::DvfsAll);
        c.control_interval_s = 0.0;
        assert!(c.validate().is_err());
        let mut c = CtrlConfig::demo(Policy::DvfsAll);
        c.autoscaler.as_mut().unwrap().target_util = 1.5;
        assert!(c.validate().is_err());
        let mut c = CtrlConfig::demo(Policy::DvfsAll);
        c.autoscaler.as_mut().unwrap().ewma_alpha = 0.0;
        assert!(c.validate().is_err());
        let mut c = CtrlConfig::demo(Policy::DvfsAll);
        c.autoscaler.as_mut().unwrap().cold_start_s = f64::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    fn stack_feeds_pending_commands_forward() {
        // With all three policies on a quiet cell, the autoscaler parks,
        // the gater warms the pool (seeing the pending parks), and the
        // router zeroes the weights of non-live slots.
        let cfg = CtrlConfig::demo(Policy::GateToEfficiency);
        let mut stack = cfg.build();
        let mut rng = StdRng::seed_from_u64(3);
        let obs = CellObs {
            tick: 12,
            interval_s: 5.0,
            arrived_since_last: 0,
            arrived_by_class: [0; 3],
            capacity_rps_per_instance: 2.0,
            max_queue: 50,
            chaos_down: 0,
            phase_split: None,
            clock_points: Vec::new(),
            slots: vec![
                InstanceObs {
                    mode: Mode::Live,
                    phase: Phase::Mixed,
                    clock: 0,
                    queued: 0,
                    active: 0,
                },
                InstanceObs {
                    mode: Mode::Live,
                    phase: Phase::Mixed,
                    clock: 0,
                    queued: 0,
                    active: 0,
                },
            ],
        };
        let cmds = stack.control(&obs, &mut rng);
        assert!(cmds.contains(&Command::Park { slot: 1 }));
        assert!(cmds.contains(&Command::SetWarm { slot: 1 }));
        // Router ran on the *observed* modes (both live), so the weight
        // snapshot still covers both; the data plane masks non-live slots
        // per data tick.
        assert!(cmds
            .iter()
            .any(|c| matches!(c, Command::SetWeights { weights } if weights.len() == 2)));
        let empty = CtrlConfig {
            control_interval_s: 5.0,
            autoscaler: None,
            dvfs: None,
            power: None,
            router: None,
        };
        assert!(empty.build().is_empty());
    }

    #[test]
    fn dvfs_labels_builds_and_validates() {
        let c = CtrlConfig::demo(Policy::GateToEfficiency).with_dvfs();
        c.validate().unwrap();
        assert_eq!(c.label(), "autoscale+dvfs+gate(GateToEfficiency)+route");
        assert_eq!(c.build().len(), 4);
        let mut bad = c.clone();
        bad.dvfs.as_mut().unwrap().target_util = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = c;
        bad.dvfs.as_mut().unwrap().ewma_alpha = 1.5;
        assert!(bad.validate().is_err());
    }
}

//! Serving-time DVFS: per-cell, per-pool selection of the lowest
//! SLO-feasible operating point that still covers demand.
//!
//! Power gating handles *parked* capacity; this module handles the
//! instances that stay live. §3's finer-granularity argument applies to
//! clocks too: a Lite cell can run its prefill pool hot (compute-bound —
//! a down-clock inflates TTFT nearly 1/clock) while its decode pool
//! serves at the efficiency floor (memory-bound — step times barely move
//! while dynamic power falls cubically). The controller tracks demand
//! with an EWMA (plus a backlog-drain term, so standing queues force
//! clocks back up) and, for each phase pool, picks the **lowest** clock
//! point that
//!
//! 1. is SLO-feasible for that pool's phase ([`ClockPoint::slo_ok`] —
//!    derived by the data plane from the same step-cost table that
//!    prices serving, against the tightest per-tenant TTFT/TBT target),
//!    and
//! 2. retains enough throughput: `demand ≤ serving × capacity ×
//!    scale(point) × target_util`.
//!
//! Selection is deterministic and strictly cell-local, so DVFS-controlled
//! fleets keep the engine's byte-identical-report-at-any-shard-count
//! guarantee. On fleets whose data plane priced only the nominal clock
//! ([`CellObs::clock_points`] is empty) the controller stands down.

use crate::controller::{CellObs, ClockPoint, Command, Controller, Mode, Phase};
use rand::rngs::StdRng;

/// DVFS policy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsConfig {
    /// Utilization ceiling at the chosen operating point, in `(0, 1]`:
    /// a point is eligible only while smoothed demand stays below this
    /// fraction of the pool's down-clocked capacity. Higher than the
    /// autoscaler's sizing target on purpose — the autoscaler provisions
    /// slack, DVFS converts the slack it dares into energy.
    pub target_util: f64,
    /// EWMA smoothing factor per control tick, in `(0, 1]` (1 = no
    /// smoothing).
    pub ewma_alpha: f64,
}

impl Default for DvfsConfig {
    fn default() -> Self {
        Self {
            target_util: 0.92,
            ewma_alpha: 0.4,
        }
    }
}

/// The per-cell DVFS policy (holds the demand EWMA).
#[derive(Debug, Clone)]
pub struct DvfsController {
    cfg: DvfsConfig,
    ewma_rps: Option<f64>,
}

impl DvfsController {
    /// Builds a DVFS controller with no demand history.
    pub fn new(cfg: DvfsConfig) -> Self {
        Self {
            cfg,
            ewma_rps: None,
        }
    }

    /// Smoothed cell demand estimate, requests/s (for tests/diagnostics).
    pub fn ewma_rps(&self) -> Option<f64> {
        self.ewma_rps
    }

    /// Lowest eligible clock index for a pool of `serving` instances of
    /// nominal per-instance capacity `cap_rps`, given smoothed demand.
    fn pick(
        &self,
        points: &[ClockPoint],
        phase: Phase,
        demand_rps: f64,
        serving: u32,
        cap_rps: f64,
    ) -> u8 {
        let nominal = (points.len() - 1) as u8;
        if serving == 0 {
            return nominal;
        }
        for (ci, p) in points.iter().enumerate() {
            let capacity = serving as f64 * cap_rps * p.scale(phase) * self.cfg.target_util;
            if p.slo_ok(phase) && demand_rps <= capacity {
                return ci as u8;
            }
        }
        nominal
    }
}

impl Controller for DvfsController {
    fn name(&self) -> &'static str {
        "dvfs"
    }

    fn control(&mut self, obs: &CellObs, pending: &[Command], _rng: &mut StdRng) -> Vec<Command> {
        // Nominal-only data planes price no alternative points.
        if obs.clock_points.len() < 2 {
            return Vec::new();
        }
        let interval = obs.interval_s.max(1e-9);
        let rate = obs.arrived_since_last as f64 / interval;
        let ewma = match self.ewma_rps {
            None => rate,
            Some(p) => self.cfg.ewma_alpha * rate + (1.0 - self.cfg.ewma_alpha) * p,
        };
        self.ewma_rps = Some(ewma);
        // Standing backlog must drain within a control interval: it adds
        // to demand, pushing clocks back toward nominal under pressure.
        let demand = ewma + obs.queued_total() as f64 / interval;

        // Work on the pool partition as it will stand after this tick's
        // pending commands: the autoscaler runs first in the stack, so
        // its SetPhase moves and activations are already decided.
        let mut phases: Vec<Phase> = obs.slots.iter().map(|s| s.phase).collect();
        let mut serving: Vec<bool> = obs
            .slots
            .iter()
            .map(|s| matches!(s.mode, Mode::Live | Mode::Booting))
            .collect();
        for cmd in pending {
            match cmd {
                Command::SetPhase { slot, phase } => {
                    if let Some(p) = phases.get_mut(*slot as usize) {
                        *p = *phase;
                    }
                }
                Command::Activate { slot } => {
                    if let Some(s) = serving.get_mut(*slot as usize) {
                        *s = true;
                    }
                }
                Command::Park { slot } => {
                    if let Some(s) = serving.get_mut(*slot as usize) {
                        *s = false;
                    }
                }
                _ => {}
            }
        }

        // Every admitted request needs one residency in each pool, so
        // each pool prices the full demand stream against its own
        // capacity — the same convention the phase-aware autoscaler uses.
        let mut cmds = Vec::new();
        for phase in [Phase::Mixed, Phase::Prefill, Phase::Decode] {
            let count = phases
                .iter()
                .zip(&serving)
                .filter(|(p, s)| **p == phase && **s)
                .count() as u32;
            if count == 0 {
                continue;
            }
            let cap_rps = match (phase, &obs.phase_split) {
                (Phase::Prefill, Some(ps)) => ps.prefill_capacity_rps,
                (Phase::Decode, Some(ps)) => ps.decode_capacity_rps,
                _ => obs.capacity_rps_per_instance,
            };
            let want = self.pick(&obs.clock_points, phase, demand, count, cap_rps);
            for (i, slot) in obs.slots.iter().enumerate() {
                if phases[i] == phase && serving[i] && slot.clock != want {
                    cmds.push(Command::SetClock {
                        slot: i as u32,
                        clock: want,
                    });
                }
            }
        }
        cmds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{InstanceObs, PhaseObs};
    use rand::SeedableRng;

    /// A 3-point grid shaped like the real tables: prefill compute-bound
    /// (scale ~ clock), decode memory-bound (scale ~ 1), lowest point
    /// TTFT-infeasible.
    fn points() -> Vec<ClockPoint> {
        vec![
            ClockPoint {
                clock: 0.75,
                mixed_scale: 0.8,
                prefill_scale: 0.76,
                decode_scale: 0.98,
                prefill_slo_ok: false,
                decode_slo_ok: true,
            },
            ClockPoint {
                clock: 0.9,
                mixed_scale: 0.93,
                prefill_scale: 0.91,
                decode_scale: 0.99,
                prefill_slo_ok: true,
                decode_slo_ok: true,
            },
            ClockPoint {
                clock: 1.0,
                mixed_scale: 1.0,
                prefill_scale: 1.0,
                decode_scale: 1.0,
                prefill_slo_ok: true,
                decode_slo_ok: true,
            },
        ]
    }

    fn slot(mode: Mode, phase: Phase, clock: u8, queued: u64) -> InstanceObs {
        InstanceObs {
            mode,
            phase,
            clock,
            queued,
            active: 0,
        }
    }

    fn obs(slots: Vec<InstanceObs>, arrived: u64) -> CellObs {
        CellObs {
            tick: 10,
            interval_s: 5.0,
            arrived_since_last: arrived,
            arrived_by_class: [arrived, 0, 0],
            capacity_rps_per_instance: 2.0,
            max_queue: 1000,
            chaos_down: 0,
            phase_split: None,
            clock_points: points(),
            slots,
        }
    }

    #[test]
    fn quiet_cell_downclocks_to_lowest_feasible_point() {
        let mut d = DvfsController::new(DvfsConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        // 2 live mixed slots at nominal (index 2), 1 rps of demand
        // against 2 × 2 rps: even the lowest point covers it, but index 0
        // is TTFT-infeasible for mixed serving => index 1.
        let o = obs(
            vec![
                slot(Mode::Live, Phase::Mixed, 2, 0),
                slot(Mode::Live, Phase::Mixed, 2, 0),
            ],
            5,
        );
        let cmds = d.control(&o, &[], &mut rng);
        assert_eq!(
            cmds,
            vec![
                Command::SetClock { slot: 0, clock: 1 },
                Command::SetClock { slot: 1, clock: 1 }
            ]
        );
    }

    #[test]
    fn demand_pressure_holds_nominal_clock() {
        let mut d = DvfsController::new(DvfsConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        // 18 rps against 2 × 2 rps × 0.92: nothing fits, nominal stays —
        // and slots already at nominal get no command (idempotent).
        let o = obs(
            vec![
                slot(Mode::Live, Phase::Mixed, 2, 0),
                slot(Mode::Live, Phase::Mixed, 2, 0),
            ],
            90,
        );
        assert!(d.control(&o, &[], &mut rng).is_empty());
    }

    #[test]
    fn backlog_forces_clocks_back_up() {
        let mut d = DvfsController::new(DvfsConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        // No fresh arrivals, but a deep standing queue: the drain term
        // dominates and the down-clocked slot is retuned to nominal.
        let o = obs(vec![slot(Mode::Live, Phase::Mixed, 0, 200)], 0);
        let cmds = d.control(&o, &[], &mut rng);
        assert_eq!(cmds, vec![Command::SetClock { slot: 0, clock: 2 }]);
    }

    #[test]
    fn split_pools_pick_different_points() {
        let mut d = DvfsController::new(DvfsConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        // Prefill capacity is high (8 rps/inst) and index 0 is
        // prefill-infeasible => prefill pool lands on index 1; decode
        // (2 rps/inst, memory-bound scale ≈ 1) absorbs the same demand at
        // the floor => index 0. Different points per pool — §3's
        // fine-grained clock control.
        let mut o = obs(
            vec![
                slot(Mode::Live, Phase::Prefill, 2, 0),
                slot(Mode::Live, Phase::Decode, 2, 0),
                slot(Mode::Live, Phase::Decode, 2, 0),
                slot(Mode::Live, Phase::Decode, 2, 0),
            ],
            25, // 5 rps.
        );
        o.phase_split = Some(PhaseObs {
            prefill_capacity_rps: 8.0,
            decode_capacity_rps: 2.0,
            kv_backlog_us: 0,
        });
        let cmds = d.control(&o, &[], &mut rng);
        assert!(cmds.contains(&Command::SetClock { slot: 0, clock: 1 }));
        for s in 1..4 {
            assert!(
                cmds.contains(&Command::SetClock { slot: s, clock: 0 }),
                "{s}"
            );
        }
    }

    #[test]
    fn pending_phase_moves_and_parks_are_respected() {
        let mut d = DvfsController::new(DvfsConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let mut o = obs(
            vec![
                slot(Mode::Live, Phase::Prefill, 2, 0),
                slot(Mode::Live, Phase::Prefill, 2, 0),
            ],
            5,
        );
        o.phase_split = Some(PhaseObs {
            prefill_capacity_rps: 8.0,
            decode_capacity_rps: 2.0,
            kv_backlog_us: 0,
        });
        // The autoscaler just moved slot 1 to decode and parked slot 0:
        // slot 1 is tuned as a decode slot, slot 0 not at all.
        let pending = vec![
            Command::SetPhase {
                slot: 1,
                phase: Phase::Decode,
            },
            Command::Park { slot: 0 },
        ];
        let cmds = d.control(&o, &pending, &mut rng);
        assert_eq!(cmds, vec![Command::SetClock { slot: 1, clock: 0 }]);
    }

    #[test]
    fn stands_down_without_a_clock_grid() {
        let mut d = DvfsController::new(DvfsConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let mut o = obs(vec![slot(Mode::Live, Phase::Mixed, 0, 0)], 0);
        o.clock_points = Vec::new();
        assert!(d.control(&o, &[], &mut rng).is_empty());
        assert!(d.ewma_rps().is_none(), "no state accrues while inactive");
    }

    #[test]
    fn ewma_remembers_spikes() {
        let mut d = DvfsController::new(DvfsConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let busy = obs(vec![slot(Mode::Live, Phase::Mixed, 2, 0)], 400);
        d.control(&busy, &[], &mut rng);
        let spike = d.ewma_rps().unwrap();
        let quiet = obs(vec![slot(Mode::Live, Phase::Mixed, 2, 0)], 0);
        let cmds = d.control(&quiet, &[], &mut rng);
        let after = d.ewma_rps().unwrap();
        assert!(after > 0.0 && after < spike);
        // The smoothed spike (48 rps vs 1.84 rps ceiling) still pins
        // nominal: no retune commands on a nominal-clocked slot.
        assert!(cmds.is_empty());
    }
}

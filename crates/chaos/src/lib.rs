//! `litegpu-chaos` — deterministic chaos campaigns over the fleet
//! simulator.
//!
//! The paper's §3 availability story ("smaller blast radius, cheaper
//! spares") is usually argued with i.i.d. per-GPU failures, but real
//! fleets die in *correlated* chunks: a rack PDU trips, a breaker group
//! browns out, a cooling loop degrades, a rollout drains a wave of
//! hosts. This crate compiles such **campaigns** into the schedule of
//! [`DomainEvent`]s that `litegpu-fleet` executes:
//!
//! - [`DomainPlan`] maps a [`FleetConfig`] onto the physical failure
//!   domains (instance → rack → power domain) via
//!   [`litegpu_cluster::DomainTopology`], using each fleet's *own* power
//!   draw — at equal rack power an H100 rack holds few fat instances
//!   and a Lite rack holds many small ones, so the same rack loss
//!   strands very different capacity fractions.
//! - [`Campaign`] names what goes wrong ([`CampaignKind`]), how often,
//!   for how long, and how hard ([`Campaign::intensity`]).
//! - [`compile`] turns `(config, plan, campaign, seed)` into a
//!   [`ChaosSpec`] **before** the fleet is sharded, from a dedicated RNG
//!   stream — so the byte-identical-report determinism guarantee holds
//!   at any shard or thread count under chaos too.
//! - [`excursion_clamp`] prices thermal excursions through the cooling
//!   model: the sustainable clock under an intensity-derated cooling
//!   limit. H100s run near their cooling class's ceiling and clamp
//!   hard; Lite-GPUs sit far below the forced-air limit and often ride
//!   the same excursion through at full clock.
//! - [`run_campaign`] runs a config under a campaign, and
//!   [`ChaosReport`] collects the per-fleet [`CampaignOutcome`]s
//!   (availability, per-tenant SLO attainment, energy, spares consumed,
//!   MTTR) that the `sim_chaos` binary sweeps.

use litegpu_cluster::DomainTopology;
use litegpu_fleet::engine::{ChaosSpec, DomainEvent, DomainEventKind, FleetConfig};
use litegpu_fleet::report::{FailureBreakdown, FleetReport};
use litegpu_fleet::{run_sharded, run_sharded_full, FleetRun};
use litegpu_specs::cooling::CoolingClass;
use litegpu_specs::power::PowerModel;
use litegpu_specs::GpuSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Domain separator for the campaign RNG stream: keeps chaos schedules
/// decoupled from the engine's per-instance and per-tenant streams even
/// under the same user seed.
pub const STREAM: u64 = 0x0043_4841_4f53; // "CHAOS"

/// Lowest clamp a thermal excursion can impose (the engine floors the
/// served clock at its lowest priced operating point anyway).
const MIN_CLAMP: f64 = 0.05;

/// Errors from campaign compilation or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosError {
    /// A campaign or plan parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The domain topology could not be built.
    Topology(litegpu_cluster::ClusterError),
    /// The underlying fleet run failed.
    Fleet(litegpu_fleet::FleetError),
}

impl core::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChaosError::InvalidParameter { name, value } => {
                write!(f, "invalid chaos parameter {name} = {value}")
            }
            ChaosError::Topology(e) => write!(f, "domain topology error: {e}"),
            ChaosError::Fleet(e) => write!(f, "fleet error: {e}"),
        }
    }
}

impl std::error::Error for ChaosError {}

impl From<litegpu_cluster::ClusterError> for ChaosError {
    fn from(e: litegpu_cluster::ClusterError) -> Self {
        ChaosError::Topology(e)
    }
}

impl From<litegpu_fleet::FleetError> for ChaosError {
    fn from(e: litegpu_fleet::FleetError) -> Self {
        ChaosError::Fleet(e)
    }
}

/// Result alias for chaos operations.
pub type Result<T> = core::result::Result<T, ChaosError>;

/// The kinds of campaign the compiler knows how to schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignKind {
    /// Random whole-rack losses ([`DomainEventKind::RackLoss`]).
    RackOutages,
    /// Random breaker-group trips spanning several racks
    /// ([`DomainEventKind::PowerDomainLoss`]).
    PowerDomainOutages,
    /// Random cells cut off from the front door
    /// ([`DomainEventKind::NetworkPartition`]).
    NetworkPartitions,
    /// Cooling excursions clamping random racks' clocks
    /// ([`DomainEventKind::ThermalExcursion`]); the clamp comes from
    /// [`excursion_clamp`].
    ThermalExcursions,
    /// A planned rolling upgrade draining the fleet in sequential waves
    /// ([`DomainEventKind::RollingDrain`]).
    RollingDrain,
}

impl CampaignKind {
    /// Every campaign kind, in sweep order.
    pub const ALL: [CampaignKind; 5] = [
        CampaignKind::RackOutages,
        CampaignKind::PowerDomainOutages,
        CampaignKind::NetworkPartitions,
        CampaignKind::ThermalExcursions,
        CampaignKind::RollingDrain,
    ];

    /// Human-readable name.
    pub fn label(&self) -> &'static str {
        match self {
            CampaignKind::RackOutages => "rack outages",
            CampaignKind::PowerDomainOutages => "power-domain outages",
            CampaignKind::NetworkPartitions => "network partitions",
            CampaignKind::ThermalExcursions => "thermal excursions",
            CampaignKind::RollingDrain => "rolling drain",
        }
    }

    /// CLI / file-name slug.
    pub fn slug(&self) -> &'static str {
        match self {
            CampaignKind::RackOutages => "rack",
            CampaignKind::PowerDomainOutages => "power",
            CampaignKind::NetworkPartitions => "partition",
            CampaignKind::ThermalExcursions => "thermal",
            CampaignKind::RollingDrain => "drain",
        }
    }

    /// Parses a slug back into a kind.
    pub fn from_slug(s: &str) -> Option<CampaignKind> {
        CampaignKind::ALL.into_iter().find(|k| k.slug() == s)
    }

    /// Per-kind RNG sub-stream, so campaigns of different kinds under
    /// the same seed draw independent schedules.
    fn stream(&self) -> u64 {
        match self {
            CampaignKind::RackOutages => 1,
            CampaignKind::PowerDomainOutages => 2,
            CampaignKind::NetworkPartitions => 3,
            CampaignKind::ThermalExcursions => 4,
            CampaignKind::RollingDrain => 5,
        }
    }
}

/// One chaos campaign: what goes wrong, how often, and how hard.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// What happens.
    pub kind: CampaignKind,
    /// How many events to schedule over the horizon. For
    /// [`CampaignKind::RollingDrain`] this is the number of sequential
    /// drain waves (together they cover the whole fleet exactly once).
    pub events: u32,
    /// Duration of each event window, seconds (snapped up to the tick
    /// grid at compile time).
    pub duration_s: f64,
    /// Severity knob in `(0, 1]`. Only thermal campaigns read it today:
    /// the cooling limit is derated to `intensity × limit_w` and the
    /// clamp is the clock sustainable under that derated limit.
    pub intensity: f64,
}

impl Campaign {
    /// A demo campaign of the given kind: four events of ten minutes at
    /// half-strength cooling.
    pub fn demo(kind: CampaignKind) -> Self {
        Campaign {
            kind,
            events: 4,
            duration_s: 600.0,
            intensity: 0.5,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.events == 0 {
            return Err(ChaosError::InvalidParameter {
                name: "events",
                value: 0.0,
            });
        }
        if !(self.duration_s > 0.0 && self.duration_s.is_finite()) {
            return Err(ChaosError::InvalidParameter {
                name: "duration_s",
                value: self.duration_s,
            });
        }
        if !(self.intensity > 0.0 && self.intensity <= 1.0) {
            return Err(ChaosError::InvalidParameter {
                name: "intensity",
                value: self.intensity,
            });
        }
        Ok(())
    }
}

/// How the fleet maps onto physical failure domains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainPlan {
    /// Power budget of one rack, kW. The *same* budget hosts both
    /// fleets, so the instances-per-rack ratio (and hence blast radius)
    /// falls out of each GPU's own draw.
    pub rack_kw: f64,
    /// Racks fed by one breaker group.
    pub racks_per_power_domain: u32,
}

impl Default for DomainPlan {
    fn default() -> Self {
        DomainPlan {
            rack_kw: 10.0,
            racks_per_power_domain: 4,
        }
    }
}

/// Builds the failure-domain topology for a fleet config under a plan:
/// instance power is the config's own `tdp_w × gpus_per_instance`.
pub fn topology(cfg: &FleetConfig, plan: &DomainPlan) -> Result<DomainTopology> {
    if !(plan.rack_kw > 0.0 && plan.rack_kw.is_finite()) {
        return Err(ChaosError::InvalidParameter {
            name: "rack_kw",
            value: plan.rack_kw,
        });
    }
    let instance_mw = (cfg.gpu.tdp_w * cfg.gpus_per_instance as f64 * 1000.0).round() as u64;
    let rack_mw = (plan.rack_kw * 1_000_000.0).round() as u64;
    Ok(DomainTopology::new(
        cfg.instances,
        instance_mw,
        rack_mw,
        plan.racks_per_power_domain,
    )?)
}

/// The clock clamp a cooling excursion of the given intensity imposes on
/// this GPU: the clock sustainable when its cooling class delivers only
/// `intensity × limit_w`, via the cubic DVFS power model. A GPU running
/// near its class ceiling (H100 under advanced air) clamps hard; one
/// sitting far below it (Lite under forced air) may ride the excursion
/// through at full clock (clamp `1.0`).
pub fn excursion_clamp(spec: &GpuSpec, intensity: f64) -> f64 {
    let class = CoolingClass::required_for(spec.tdp_w);
    let derated_w = class.limit_w() * intensity.clamp(0.0, 1.0);
    let model = PowerModel::for_spec(spec);
    match model.max_clock_factor(derated_w) {
        Ok(f) => f.clamp(MIN_CLAMP, 1.0),
        // Derated limit at or below idle draw: clamp to the floor.
        Err(_) => MIN_CLAMP,
    }
}

/// Snaps `us` down to the tick grid.
fn snap(us: u64, tick_us: u64) -> u64 {
    (us / tick_us) * tick_us
}

/// Compiles a campaign into the deterministic event schedule the fleet
/// engine executes. The schedule depends only on `(cfg, plan, campaign,
/// seed)` — never on sharding — and every window is snapped to the tick
/// grid, so the same arguments always produce the same [`ChaosSpec`]
/// and the fleet report stays byte-identical at any shard/thread count.
pub fn compile(
    cfg: &FleetConfig,
    plan: &DomainPlan,
    campaign: &Campaign,
    seed: u64,
) -> Result<ChaosSpec> {
    campaign.validate()?;
    let topo = topology(cfg, plan)?;
    let tick_us = (cfg.tick_s * 1e6).round() as u64;
    let horizon_us = (cfg.horizon_s * 1e6).round() as u64;
    if tick_us == 0 || horizon_us < tick_us {
        return Err(ChaosError::InvalidParameter {
            name: "tick_s/horizon_s",
            value: cfg.tick_s,
        });
    }
    let duration_us = ((campaign.duration_s * 1e6).round() as u64)
        .div_ceil(tick_us)
        .max(1)
        * tick_us;
    if duration_us >= horizon_us {
        return Err(ChaosError::InvalidParameter {
            name: "duration_s (must fit inside the horizon)",
            value: campaign.duration_s,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed ^ STREAM ^ campaign.kind.stream());
    let mut events = Vec::with_capacity(campaign.events as usize);
    if campaign.kind == CampaignKind::RollingDrain {
        // Sequential waves covering the fleet exactly once, evenly
        // spaced over the horizon. No randomness: upgrades are planned.
        let waves = u64::from(campaign.events)
            .min(u64::from(cfg.instances))
            .max(1);
        let n = u64::from(cfg.instances);
        for w in 0..waves {
            let lo = (w * n / waves) as u32;
            let hi = ((w + 1) * n / waves) as u32;
            if hi <= lo {
                continue;
            }
            let start = snap(w * horizon_us / waves, tick_us);
            events.push(DomainEvent {
                kind: DomainEventKind::RollingDrain,
                start_us: start,
                end_us: start + duration_us,
                instances: (lo..hi).collect(),
            });
        }
        return Ok(ChaosSpec { events });
    }
    let latest_start = horizon_us - duration_us;
    for _ in 0..campaign.events {
        let start = snap(rng.random_range(0..latest_start.max(1)), tick_us);
        let (kind, instances) = match campaign.kind {
            CampaignKind::RackOutages => {
                let rack = rng.random_range(0..topo.num_racks());
                (
                    DomainEventKind::RackLoss,
                    topo.rack_instances(rack).collect(),
                )
            }
            CampaignKind::PowerDomainOutages => {
                let dom = rng.random_range(0..topo.num_power_domains());
                (
                    DomainEventKind::PowerDomainLoss,
                    topo.power_domain_instances(dom).collect(),
                )
            }
            CampaignKind::NetworkPartitions => {
                // One marker instance per partitioned cell: the engine
                // partitions the whole cell containing each listed id.
                let cell = rng.random_range(0..cfg.num_cells());
                (
                    DomainEventKind::NetworkPartition,
                    vec![cell * cfg.cell_size],
                )
            }
            CampaignKind::ThermalExcursions => {
                let rack = rng.random_range(0..topo.num_racks());
                (
                    DomainEventKind::ThermalExcursion {
                        clamp: excursion_clamp(&cfg.gpu, campaign.intensity),
                    },
                    topo.rack_instances(rack).collect(),
                )
            }
            CampaignKind::RollingDrain => unreachable!("handled above"),
        };
        events.push(DomainEvent {
            kind,
            start_us: start,
            end_us: start + duration_us,
            instances,
        });
    }
    Ok(ChaosSpec { events })
}

/// Compiles the campaign into `cfg` and runs the fleet.
pub fn run_campaign(
    cfg: &FleetConfig,
    plan: &DomainPlan,
    campaign: &Campaign,
    seed: u64,
    shards: u32,
    threads: u32,
) -> Result<FleetReport> {
    let spec = compile(cfg, plan, campaign, seed)?;
    let mut c = cfg.clone();
    c.chaos = spec;
    Ok(run_sharded(&c, seed, shards, threads)?)
}

/// [`run_campaign`] plus whatever telemetry `cfg.telemetry` asked for
/// (availability series, trace of the campaign's outages/repairs,
/// engine profile) — the recovery-timeline view the per-campaign table
/// cannot show.
pub fn run_campaign_full(
    cfg: &FleetConfig,
    plan: &DomainPlan,
    campaign: &Campaign,
    seed: u64,
    shards: u32,
    threads: u32,
) -> Result<FleetRun> {
    let spec = compile(cfg, plan, campaign, seed)?;
    let mut c = cfg.clone();
    c.chaos = spec;
    Ok(run_sharded_full(&c, seed, shards, threads)?)
}

/// Per-tenant SLO attainment inside a [`CampaignOutcome`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TenantSlo {
    /// Tenant name.
    pub name: String,
    /// Priority class label.
    pub priority: String,
    /// Fraction of completed requests meeting the tenant's TTFT SLO.
    pub ttft_attainment: f64,
    /// Fraction of completed requests meeting the tenant's TBT SLO.
    pub tbt_attainment: f64,
}

/// What one fleet did under one campaign.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CampaignOutcome {
    /// Fleet label (e.g. `"h100"` / `"lite"`).
    pub fleet: String,
    /// Instance availability over the horizon.
    pub availability: f64,
    /// Fleet-wide TTFT SLO attainment.
    pub ttft_attainment: f64,
    /// Fleet-wide TBT SLO attainment.
    pub tbt_attainment: f64,
    /// Per-tenant SLO attainment.
    pub per_tenant: Vec<TenantSlo>,
    /// Total fleet energy, joules.
    pub energy_j: u64,
    /// Energy per generated token, joules.
    pub energy_per_token_j: f64,
    /// Spares consumed (spare-pool hits) over the horizon.
    pub spares_consumed: u64,
    /// Instance-down failures, all causes.
    pub failures: u64,
    /// Failures attributed by domain kind.
    pub breakdown: FailureBreakdown,
    /// Repair jobs handed to crews.
    pub repairs_dispatched: u64,
    /// Mean wait for a free crew, seconds.
    pub repair_wait_mean_s: f64,
    /// Mean time-to-restore across completed in-place repairs, seconds.
    pub mttr_s: f64,
    /// Requests shed while cells were partitioned.
    pub partition_shed: u64,
}

/// Extracts the campaign-facing numbers from a fleet report.
pub fn outcome(fleet: &str, report: &FleetReport) -> CampaignOutcome {
    let chaos = report.chaos.as_ref();
    CampaignOutcome {
        fleet: fleet.to_string(),
        availability: report.availability,
        ttft_attainment: report.ttft_attainment,
        tbt_attainment: report.tbt_attainment,
        per_tenant: report
            .per_tenant
            .iter()
            .map(|t| TenantSlo {
                name: t.name.clone(),
                priority: t.priority.clone(),
                ttft_attainment: t.ttft_attainment,
                tbt_attainment: t.tbt_attainment,
            })
            .collect(),
        energy_j: report.energy_j,
        energy_per_token_j: report.energy_per_token_j,
        spares_consumed: report.spare_hits,
        failures: report.failures,
        breakdown: report.failure_breakdown.clone(),
        repairs_dispatched: chaos.map_or(0, |c| c.repairs_dispatched),
        repair_wait_mean_s: chaos.map_or(0.0, |c| c.repair_wait_mean_s),
        mttr_s: chaos.map_or(0.0, |c| c.mttr_s),
        partition_shed: chaos.map_or(0, |c| c.partition_shed),
    }
}

/// One campaign's results across the fleets it was run against.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChaosReport {
    /// Campaign kind label.
    pub campaign: String,
    /// Events scheduled.
    pub events: u32,
    /// Event window, seconds.
    pub duration_s: f64,
    /// Severity knob.
    pub intensity: f64,
    /// Campaign seed.
    pub seed: u64,
    /// One outcome per fleet, in run order.
    pub outcomes: Vec<CampaignOutcome>,
}

impl ChaosReport {
    /// Assembles a report from a campaign and its per-fleet outcomes.
    pub fn new(campaign: &Campaign, seed: u64, outcomes: Vec<CampaignOutcome>) -> Self {
        ChaosReport {
            campaign: campaign.kind.label().to_string(),
            events: campaign.events,
            duration_s: campaign.duration_s,
            intensity: campaign.intensity,
            seed,
            outcomes,
        }
    }

    /// Deterministic pretty JSON (used for byte-comparison in CI).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("chaos report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litegpu_fleet::run;
    use proptest::prelude::*;

    fn cfg() -> FleetConfig {
        let mut c = FleetConfig::h100_demo();
        c.instances = 48;
        c.cell_size = 8;
        c.horizon_s = 1800.0;
        c.failure_acceleration = 10_000.0;
        c
    }

    #[test]
    fn compile_is_deterministic() {
        let c = cfg();
        let plan = DomainPlan::default();
        for kind in CampaignKind::ALL {
            let camp = Campaign::demo(kind);
            let a = compile(&c, &plan, &camp, 7).unwrap();
            let b = compile(&c, &plan, &camp, 7).unwrap();
            assert_eq!(a, b, "{kind:?} schedule must be seed-deterministic");
            assert!(!a.events.is_empty());
        }
    }

    #[test]
    fn compiled_specs_pass_fleet_validation() {
        let c = cfg();
        let plan = DomainPlan::default();
        for kind in CampaignKind::ALL {
            let spec = compile(&c, &plan, &Campaign::demo(kind), 3).unwrap();
            let mut with = c.clone();
            with.chaos = spec;
            with.validate().unwrap();
        }
    }

    #[test]
    fn rack_events_match_topology_blast_radius() {
        let c = cfg();
        let plan = DomainPlan::default();
        let topo = topology(&c, &plan).unwrap();
        let spec = compile(&c, &plan, &Campaign::demo(CampaignKind::RackOutages), 11).unwrap();
        let sizes: Vec<usize> = (0..topo.num_racks())
            .map(|r| topo.rack_instances(r).len())
            .collect();
        for e in &spec.events {
            assert_eq!(e.kind, DomainEventKind::RackLoss);
            assert!(sizes.contains(&e.instances.len()));
        }
    }

    #[test]
    fn rolling_drain_covers_fleet_exactly_once() {
        let c = cfg();
        let spec = compile(
            &c,
            &DomainPlan::default(),
            &Campaign::demo(CampaignKind::RollingDrain),
            1,
        )
        .unwrap();
        let mut covered: Vec<u32> = spec
            .events
            .iter()
            .flat_map(|e| e.instances.clone())
            .collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..c.instances).collect::<Vec<_>>());
        // Waves start in sequence, not all at once.
        let starts: Vec<u64> = spec.events.iter().map(|e| e.start_us).collect();
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn thermal_clamp_tracks_cooling_headroom() {
        let h100 = litegpu_specs::catalog::h100();
        let lite = litegpu_specs::catalog::lite_base();
        let (ch, cl) = (excursion_clamp(&h100, 0.5), excursion_clamp(&lite, 0.5));
        // H100 runs near its cooling class ceiling and clamps hard; Lite
        // has forced-air headroom and rides a half-strength excursion out.
        assert!(ch < 0.9, "H100 clamp {ch}");
        assert!((cl - 1.0).abs() < 1e-12, "Lite clamp {cl}");
        // Severity is monotone.
        assert!(excursion_clamp(&h100, 0.3) < ch);
        // Sub-idle derated limits floor out instead of erroring.
        assert_eq!(excursion_clamp(&h100, 0.01), MIN_CLAMP);
    }

    #[test]
    fn campaigns_run_and_report() {
        let mut c = cfg();
        c.workload = litegpu_fleet::WorkloadSpec::multi_tenant_demo(1.0);
        let camp = Campaign {
            kind: CampaignKind::RackOutages,
            events: 3,
            duration_s: 300.0,
            intensity: 0.5,
        };
        let report = run_campaign(&c, &DomainPlan::default(), &camp, 5, 2, 2).unwrap();
        let chaos = report
            .chaos
            .as_ref()
            .expect("campaign runs carry a chaos section");
        assert!(
            report.failure_breakdown.rack > 0,
            "rack losses must be attributed"
        );
        assert!(chaos.repairs_dispatched > 0);
        let out = outcome("h100", &report);
        assert_eq!(out.failures, report.failures);
        assert_eq!(out.per_tenant.len(), 3);
        let rep = ChaosReport::new(&camp, 5, vec![out]);
        assert!(rep.to_json().contains("\"rack\""));
    }

    #[test]
    fn invalid_campaigns_rejected() {
        let c = cfg();
        let plan = DomainPlan::default();
        let mut camp = Campaign::demo(CampaignKind::RackOutages);
        camp.events = 0;
        assert!(compile(&c, &plan, &camp, 1).is_err());
        let mut camp = Campaign::demo(CampaignKind::RackOutages);
        camp.duration_s = c.horizon_s * 2.0;
        assert!(compile(&c, &plan, &camp, 1).is_err());
        let mut camp = Campaign::demo(CampaignKind::ThermalExcursions);
        camp.intensity = 0.0;
        assert!(compile(&c, &plan, &camp, 1).is_err());
        let mut plan_bad = plan;
        plan_bad.rack_kw = -1.0;
        assert!(topology(&c, &plan_bad).is_err());
    }

    proptest! {
        #[test]
        fn chaos_reports_stay_shard_invariant(
            seed in 0u64..50,
            kind_idx in 0usize..5,
        ) {
            let mut c = cfg();
            c.horizon_s = 600.0;
            let camp = Campaign {
                kind: CampaignKind::ALL[kind_idx],
                events: 2,
                duration_s: 120.0,
                intensity: 0.5,
            };
            let spec = compile(&c, &DomainPlan::default(), &camp, seed).unwrap();
            c.chaos = spec;
            let base = run(&c, seed).unwrap().to_json();
            let sharded = run_sharded(&c, seed, 3, 2).unwrap().to_json();
            prop_assert_eq!(base, sharded);
        }
    }
}

//! `litegpu` — a modeling and simulation suite for Lite-GPU AI clusters.
//!
//! This is the facade crate of the reproduction of *"Good things come in
//! small packages: Should we build AI clusters with Lite-GPUs?"*
//! (Microsoft Research, HotOS '25). It re-exports the substrate crates and
//! offers two high-level entry points:
//!
//! - [`designer`]: an end-to-end Lite-GPU cluster designer — start from a
//!   parent GPU (H100), pick a split factor and a shoreline/clock
//!   customization, and get a validated spec plus manufacturing-cost,
//!   cooling, performance and reliability deltas.
//! - [`experiments`]: one function per paper artifact (Table 1, Figures
//!   1–3, and the quantitative §2/§3 claims), each returning both
//!   structured data and rendered text, so binaries, tests and notebooks
//!   share one implementation.
//!
//! # Quickstart
//!
//! ```
//! use litegpu::prelude::*;
//!
//! // The paper's headline economics: quarter the die, ~1.8x the yield.
//! let cmp = litegpu::fab::cost::h100_vs_lite_comparison().unwrap();
//! assert!(cmp.yield_gain > 1.7);
//!
//! // And the headline performance result (Figure 3b, decode):
//! let params = EngineParams::paper_defaults();
//! let best = litegpu::roofline::search::best_decode(
//!     &catalog::lite_mem_bw(),
//!     &models::llama3_70b(),
//!     &params,
//! ).unwrap();
//! assert!(best.tokens_per_s_per_sm > 0.0);
//! ```

pub use litegpu_cluster as cluster;
pub use litegpu_fab as fab;
pub use litegpu_fleet as fleet;
pub use litegpu_net as net;
pub use litegpu_plot as plot;
pub use litegpu_roofline as roofline;
pub use litegpu_sim as sim;
pub use litegpu_specs as specs;
pub use litegpu_workload as workload;

pub mod designer;
pub mod experiments;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use crate::designer::{ClusterDesign, ClusterDesigner};
    pub use litegpu_roofline::{figures, EngineParams, OverlapMode};
    pub use litegpu_specs::{catalog, GpuSpec, LiteCustomization, LiteDerivation};
    pub use litegpu_workload::{models, ModelArch, Precision};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let _ = crate::specs::catalog::h100();
        let _ = crate::workload::models::llama3_8b();
    }
}

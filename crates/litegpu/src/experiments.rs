//! One entry point per paper artifact.
//!
//! Every table, figure and quantitative claim in the paper has a function
//! here returning a rendered report (and, where useful, structured data).
//! The `litegpu-bench` binaries are thin wrappers over these, so tests,
//! binaries and docs all exercise the same code.

use litegpu_cluster::failure::{self, ClusterReliability, FailureModel};
use litegpu_cluster::node::ClusterSpec;
use litegpu_cluster::power_mgmt::{self, Policy};
use litegpu_fab::cost::h100_vs_lite_comparison;
use litegpu_fab::yield_model::YieldModel;
use litegpu_net::switching::{CircuitSwitch, PacketSwitch, SwitchComparison};
use litegpu_plot::bar::GroupedBarChart;
use litegpu_plot::table::TextTable;
use litegpu_roofline::{figures, EngineParams};
use litegpu_sim::{simulate, ServingConfig};
use litegpu_specs::catalog;

/// A rendered experiment artifact.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Short id (`"table1"`, `"fig3a"`, `"claim_yield"`, ...).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Rendered report text.
    pub output: String,
}

/// Table 1: the GPU configurations.
pub fn table1() -> Experiment {
    let mut t = TextTable::new(&[
        "GPU type",
        "TFLOPS",
        "Cap. GB",
        "Mem BW GB/s",
        "Net BW GB/s",
        "#Max GPUs",
    ]);
    for s in catalog::table1() {
        t.row_owned(vec![
            s.name.clone(),
            format!("{:.0}", s.tflops),
            format!("{:.0}", s.mem_capacity_gb),
            format!("{:.1}", s.mem_bw_gbps),
            format!("{:.1}", s.net_bw_gbps),
            format!("{}", s.max_gpus),
        ]);
    }
    Experiment {
        id: "table1",
        title: "Table 1: GPU configurations",
        output: t.render(),
    }
}

/// Figure 1: the evolution of GPUs in AI clusters.
pub fn fig1() -> Experiment {
    let mut t = TextTable::new(&[
        "GPU",
        "Year",
        "Dies",
        "Transistors (B)",
        "Die area mm²",
        "TDP W",
        "HBM GB",
        "HBM GB/s",
        "Cooling",
    ]);
    let gens = catalog::generations();
    for g in &gens {
        t.row_owned(vec![
            g.name.to_string(),
            g.year.to_string(),
            g.compute_dies.to_string(),
            format!("{:.1}", g.transistors_b),
            format!("{:.0}", g.die_area_mm2),
            format!("{:.0}", g.tdp_w),
            format!("{:.0}", g.hbm_gb),
            format!("{:.0}", g.hbm_bw_gbps),
            if g.liquid_cooled { "liquid" } else { "air" }.to_string(),
        ]);
    }
    let mut chart = GroupedBarChart::new("Package trajectory (normalized to P100)");
    let base = &gens[0];
    chart.set_groups(gens.iter().map(|g| g.name.to_string()).collect());
    chart.add_series(
        "transistors",
        gens.iter()
            .map(|g| g.transistors_b / base.transistors_b)
            .collect(),
    );
    chart.add_series("tdp", gens.iter().map(|g| g.tdp_w / base.tdp_w).collect());
    Experiment {
        id: "fig1",
        title: "Figure 1: Evolution of GPUs in AI clusters",
        output: format!("{}\n{}", t.render(), chart.render(40)),
    }
}

/// Figure 2: an example Lite-GPU deployment.
pub fn fig2() -> Experiment {
    let plan =
        crate::designer::replacement_plan(4).unwrap_or_else(|e| format!("design failed: {e}"));
    Experiment {
        id: "fig2",
        title: "Figure 2: Example Lite-GPU deployment (1 H100 -> 4 Lite-GPUs)",
        output: plan,
    }
}

fn render_figure3(fig: &figures::Figure3, title: &str) -> String {
    let mut chart = GroupedBarChart::new(format!("{title} — normalized tokens/s/SM"));
    chart.set_groups(fig.models.clone());
    for gpu in &fig.gpu_types {
        let series: Vec<f64> = fig
            .models
            .iter()
            .map(|m| fig.point(m, gpu).map(|p| p.normalized).unwrap_or(0.0))
            .collect();
        chart.add_series(gpu.clone(), series);
    }
    let mut t = TextTable::new(&[
        "model", "gpu", "norm", "tok/s/SM", "gpus", "batch", "latency",
    ]);
    for p in &fig.points {
        t.row_owned(vec![
            p.model.clone(),
            p.gpu.clone(),
            format!("{:.3}", p.normalized),
            format!("{:.2}", p.tokens_per_s_per_sm),
            p.gpus.to_string(),
            p.batch.to_string(),
            litegpu_specs::units::format_seconds(p.latency_s),
        ]);
    }
    format!("{}\n{}", chart.render(40), t.render())
}

/// Figure 3a: prefill performance efficiency.
pub fn fig3a(params: &EngineParams) -> Result<(figures::Figure3, Experiment), String> {
    let fig = figures::figure3a(params).map_err(|e| e.to_string())?;
    let output = render_figure3(&fig, "Figure 3a (prompt prefill)");
    Ok((
        fig,
        Experiment {
            id: "fig3a",
            title: "Figure 3a: Prefill roofline comparison",
            output,
        },
    ))
}

/// Figure 3b: decode performance efficiency.
pub fn fig3b(params: &EngineParams) -> Result<(figures::Figure3, Experiment), String> {
    let fig = figures::figure3b(params).map_err(|e| e.to_string())?;
    let output = render_figure3(&fig, "Figure 3b (decode)");
    Ok((
        fig,
        Experiment {
            id: "fig3b",
            title: "Figure 3b: Decode roofline comparison",
            output,
        },
    ))
}

/// §2 claim: quartering an H100-class die raises yield ~1.8× and cuts
/// manufacturing cost ~50%.
pub fn claim_yield() -> Experiment {
    let mut out = String::new();
    let mut t = TextTable::new(&["yield model", "H100 yield", "Lite yield", "gain"]);
    for (name, model) in YieldModel::standard_suite() {
        let y_big = model.yield_fraction(814.0, 0.1);
        let y_lite = model.yield_fraction(814.0 / 4.0, 0.1);
        t.row_owned(vec![
            name.to_string(),
            format!("{y_big:.3}"),
            format!("{y_lite:.3}"),
            format!("{:.2}x", y_lite / y_big),
        ]);
    }
    out.push_str(&t.render());
    match h100_vs_lite_comparison() {
        Ok(cmp) => out.push_str(&format!(
            "\nPoisson @ D0=0.1/cm²: yield gain {:.2}x (paper: ~1.8x)\n\
             compute-silicon saving {:.1}% (paper: ~50%)\n\
             packaged-GPU saving {:.1}% (4 Lite packages vs 1 H100 package)\n\
             per good die: H100 ${:.0} vs 4x Lite ${:.0}\n",
            cmp.yield_gain,
            cmp.silicon_saving * 100.0,
            cmp.package_saving * 100.0,
            cmp.big_die_cost,
            cmp.lite_dies_cost,
        )),
        Err(e) => out.push_str(&format!("cost comparison failed: {e}\n")),
    }
    Experiment {
        id: "claim_yield",
        title: "§2 claim: yield x1.8 and ~50% cost saving at 1/4 die area",
        output: out,
    }
}

/// §2 claim: 1/4 die area doubles the shoreline-to-compute ratio.
pub fn claim_shoreline() -> Experiment {
    let h100 = catalog::h100();
    let lite = catalog::lite_base();
    let mut t = TextTable::new(&["quantity", "H100", "4x Lite", "ratio"]);
    let p_big = h100.die.perimeter_mm();
    let p_lite4 = 4.0 * lite.die.perimeter_mm();
    t.row_owned(vec![
        "total die area mm²".into(),
        format!("{:.0}", h100.die.area_mm2()),
        format!("{:.0}", 4.0 * lite.die.area_mm2()),
        "1.00".into(),
    ]);
    t.row_owned(vec![
        "total shoreline mm".into(),
        format!("{p_big:.0}"),
        format!("{p_lite4:.0}"),
        format!("{:.2}", p_lite4 / p_big),
    ]);
    let bw_flop_h = h100.mem_bw_per_flop();
    let bw_flop_l = catalog::lite_mem_bw().mem_bw_per_flop();
    t.row_owned(vec![
        "mem bytes/FLOP (+MemBW)".into(),
        format!("{bw_flop_h:.5}"),
        format!("{bw_flop_l:.5}"),
        format!("{:.2}", bw_flop_l / bw_flop_h),
    ]);
    Experiment {
        id: "claim_shoreline",
        title: "§2 claim: 2x bandwidth-to-compute from 4-way die split",
        output: t.render(),
    }
}

/// §3 claim: circuit switching beats packet switching on energy, latency
/// and radix.
pub fn claim_network() -> Experiment {
    let packet = PacketSwitch::tomahawk_class();
    let circuit = CircuitSwitch::sirius_class();
    let cmp = SwitchComparison::compare(&circuit, &packet);
    let mut t = TextTable::new(&["metric", "packet", "circuit", "paper claim"]);
    t.row_owned(vec![
        "energy pJ/bit".into(),
        format!("{:.0}", packet.energy_pj_per_bit),
        format!("{:.0}", circuit.energy_pj_per_bit),
        format!(">50% better ({:.0}% measured)", cmp.energy_saving * 100.0),
    ]);
    t.row_owned(vec![
        "port-to-port latency".into(),
        litegpu_specs::units::format_seconds(packet.latency_s),
        litegpu_specs::units::format_seconds(circuit.latency_s),
        "lower".into(),
    ]);
    t.row_owned(vec![
        "radix @ 100 GB/s".into(),
        packet.radix.to_string(),
        circuit.radix.to_string(),
        format!("more ports ({:.1}x)", cmp.radix_ratio),
    ]);
    let verdict = if cmp.paper_claims_hold() {
        "all three §3 claims hold"
    } else {
        "CLAIM VIOLATION — see numbers above"
    };
    Experiment {
        id: "claim_network",
        title: "§3 claim: circuit vs packet switching",
        output: format!("{}\n{verdict}\n", t.render()),
    }
}

/// §3 claim: smaller blast radius and cheaper hot spares.
pub fn claim_blast_radius() -> Experiment {
    let fm = FailureModel::default_for(&catalog::h100());
    let h = ClusterReliability::new(catalog::h100(), 8, fm).expect("valid");
    let l = ClusterReliability::new(catalog::lite_base(), 32, fm).expect("valid");
    let mut t = TextTable::new(&["metric", "8x H100", "32x Lite"]);
    t.row_owned(vec![
        "blast radius (FLOPS lost/failure)".into(),
        format!("{:.1}%", h.blast_radius_fraction() * 100.0),
        format!("{:.1}%", l.blast_radius_fraction() * 100.0),
    ]);
    t.row_owned(vec![
        "per-GPU AFR".into(),
        format!("{:.1}%", fm.afr(&h.gpu) * 100.0),
        format!("{:.1}%", fm.afr(&l.gpu) * 100.0),
    ]);
    t.row_owned(vec![
        "cluster failures/year".into(),
        format!("{:.2}", h.failures_per_year()),
        format!("{:.2}", l.failures_per_year()),
    ]);
    t.row_owned(vec![
        "expected available FLOPS".into(),
        format!("{:.4}%", h.expected_available_flops_fraction() * 100.0),
        format!("{:.4}%", l.expected_available_flops_fraction() * 100.0),
    ]);
    let mut out = t.render();
    // Hot-spare Monte Carlo: same serving capacity (4 instances of one
    // "H100-node-equivalent" each), one spare unit each.
    let mc_h = failure::monte_carlo_availability(&catalog::h100(), &fm, 4, 8, 1, 100.0, 42);
    let mc_l = failure::monte_carlo_availability(&catalog::lite_base(), &fm, 4, 32, 1, 100.0, 42);
    if let (Ok(mh), Ok(ml)) = (mc_h, mc_l) {
        out.push_str(&format!(
            "\nhot-spare Monte Carlo (4 instances, 1 spare unit, 100 sim-years):\n\
             H100: availability {:.5}, spare overhead {:.2}% of fleet\n\
             Lite: availability {:.5}, spare overhead {:.2}% of fleet (4x cheaper spare)\n",
            mh.instance_availability,
            mh.spare_overhead * 100.0,
            ml.instance_availability,
            ml.spare_overhead * 100.0,
        ));
    }
    Experiment {
        id: "claim_blast_radius",
        title: "§3 claim: blast radius and hot spares",
        output: out,
    }
}

/// §3 claim: finer-grained power management saves energy.
pub fn claim_power() -> Experiment {
    let h = ClusterSpec::h100_node();
    let l = ClusterSpec::lite_node();
    let trace = power_mgmt::diurnal_trace();
    let mut t = TextTable::new(&["cluster", "policy", "daily energy kWh", "vs DVFS-all"]);
    for (name, cluster) in [("8x H100", &h), ("32x Lite", &l)] {
        let dvfs = power_mgmt::trace_energy_j(cluster, Policy::DvfsAll, &trace).expect("valid");
        for (pname, policy) in [
            ("dvfs-all", Policy::DvfsAll),
            ("gate-naive", Policy::GateIdle),
            ("gate-to-efficiency", Policy::GateToEfficiency),
        ] {
            let e = power_mgmt::trace_energy_j(cluster, policy, &trace).expect("valid");
            t.row_owned(vec![
                name.to_string(),
                pname.to_string(),
                format!("{:.1}", e / 3.6e6),
                format!("{:+.1}%", (e / dvfs - 1.0) * 100.0),
            ]);
        }
    }
    let sh = power_mgmt::gating_saving(&h, &trace).expect("valid");
    let sl = power_mgmt::gating_saving(&l, &trace).expect("valid");
    Experiment {
        id: "claim_power",
        title: "§3 claim: finer-grained power management",
        output: format!(
            "{}\ngate-to-efficiency saving vs fleet DVFS: H100 {:.1}% | Lite {:.1}%\n",
            t.render(),
            sh * 100.0,
            sl * 100.0
        ),
    }
}

/// §4 extension: performance per dollar (the paper calls this the primary
/// cloud metric but leaves the analysis out of scope).
pub fn claim_cost_perf(params: &EngineParams) -> Experiment {
    let arch = litegpu_workload::models::llama3_70b();
    let cmp = match h100_vs_lite_comparison() {
        Ok(c) => c,
        Err(e) => {
            return Experiment {
                id: "claim_cost_perf",
                title: "Extension: decode throughput per package-cost dollar",
                output: format!("cost model failed: {e}"),
            }
        }
    };
    // Package cost per GPU; Lite fabrics add a networking adder (CPO
    // transceivers + switch share), taken as 15% of package cost.
    let h100_cost = cmp.big_package_cost;
    let lite_cost = cmp.lite_packages_cost / cmp.replacement_ratio as f64 * 1.15;
    let mut t = TextTable::new(&["gpu", "tok/s (best)", "gpus", "cluster $", "tok/s per $"]);
    let mut out_rows = Vec::new();
    for spec in [
        catalog::h100(),
        catalog::lite_base(),
        catalog::lite_mem_bw(),
    ] {
        let unit_cost = if spec.name == "H100" {
            h100_cost
        } else {
            lite_cost
        };
        match litegpu_roofline::search::best_decode(&spec, &arch, params) {
            Ok(best) => {
                let cluster_cost = unit_cost * best.gpus as f64;
                let perf_per_dollar = best.tokens_per_s / cluster_cost;
                out_rows.push((spec.name.clone(), perf_per_dollar));
                t.row_owned(vec![
                    spec.name.clone(),
                    format!("{:.0}", best.tokens_per_s),
                    best.gpus.to_string(),
                    format!("{cluster_cost:.0}"),
                    format!("{perf_per_dollar:.2}"),
                ]);
            }
            Err(e) => {
                t.row_owned(vec![spec.name.clone(), format!("error: {e}")]);
            }
        }
    }
    let verdict = match (
        out_rows.iter().find(|(n, _)| n == "H100"),
        out_rows.iter().find(|(n, _)| n == "Lite+MemBW"),
    ) {
        (Some((_, h)), Some((_, l))) if l > h => format!(
            "Lite+MemBW delivers {:.2}x the decode throughput per dollar of H100\n",
            l / h
        ),
        _ => "comparison incomplete\n".to_string(),
    };
    Experiment {
        id: "claim_cost_perf",
        title: "Extension: decode throughput per package-cost dollar",
        output: format!("{}\n{verdict}", t.render()),
    }
}

/// Serving-level validation: Splitwise-style phase splitting on H100 vs
/// Lite clusters (discrete-event simulation).
pub fn sim_serving() -> Experiment {
    let mut t = TextTable::new(&[
        "config", "req", "tok/s", "TTFT p50", "TTFT p99", "TBT p99", "TBT SLO",
    ]);
    for (name, cfg) in [
        ("H100 monolithic", ServingConfig::monolithic_h100_demo()),
        ("H100 phase-split", ServingConfig::splitwise_h100_demo()),
        ("Lite phase-split", ServingConfig::splitwise_lite_demo()),
    ] {
        match simulate(&cfg, 42) {
            Ok(r) => {
                t.row_owned(vec![
                    name.to_string(),
                    format!("{}", r.completed),
                    format!("{:.0}", r.throughput_tps),
                    litegpu_specs::units::format_seconds(r.ttft_p50_s),
                    litegpu_specs::units::format_seconds(r.ttft_p99_s),
                    litegpu_specs::units::format_seconds(r.tbt_p99_s),
                    format!("{:.1}%", r.tbt_attainment * 100.0),
                ]);
            }
            Err(e) => {
                t.row_owned(vec![name.to_string(), format!("error: {e}")]);
            }
        }
    }
    Experiment {
        id: "sim_serving",
        title: "Serving simulation: phase splitting on H100 vs Lite clusters",
        output: t.render(),
    }
}

/// Fleet-scale serving simulation: availability, goodput and spare cost
/// of H100 vs Lite fleets under diurnal traffic with accelerated
/// failures (a small instance of the `sim_fleet` binary's default run).
pub fn sim_fleet() -> Experiment {
    let mut t = TextTable::new(&[
        "fleet",
        "avail",
        "goodput tok/s",
        "TTFT p99",
        "fail",
        "spare hits",
        "spare cost",
    ]);
    for (name, mut cfg) in [
        ("H100 x120", litegpu_fleet::FleetConfig::h100_demo()),
        ("Lite x120", litegpu_fleet::FleetConfig::lite_demo()),
    ] {
        cfg.instances = 120;
        cfg.horizon_s = 2.0 * 3600.0;
        cfg.failure_acceleration = 20_000.0;
        match litegpu_fleet::run(&cfg, 42) {
            Ok(r) => {
                t.row_owned(vec![
                    name.to_string(),
                    format!("{:.4}", r.availability),
                    format!("{:.0}", r.goodput_tps),
                    litegpu_specs::units::format_seconds(r.ttft_p99_s),
                    format!("{}", r.failures),
                    format!("{}", r.spare_hits),
                    format!("{:.2}%", r.spare_overhead * 100.0),
                ]);
            }
            Err(e) => {
                t.row_owned(vec![name.to_string(), format!("error: {e}")]);
            }
        }
    }
    Experiment {
        id: "sim_fleet",
        title: "Fleet simulation: availability and spare cost, H100 vs Lite",
        output: t.render(),
    }
}

/// Fleet control-plane comparison: controlled H100 (DVFS-only parking)
/// vs controlled Lite (per-unit power gating) under the same
/// multi-tenant diurnal demand — §3's elasticity/energy argument plus
/// per-tenant SLO attainment (a small instance of the `sim_ctrl`
/// binary's default run).
pub fn sim_ctrl() -> Experiment {
    let mut t = TextTable::new(&[
        "fleet",
        "policy",
        "mean live",
        "ups/parks",
        "energy MJ",
        "idle MJ",
        "J/token",
    ]);
    let mut tenants = TextTable::new(&[
        "fleet", "tenant", "class", "arrived", "done", "shed", "TTFT SLO", "TBT SLO",
    ]);
    for (name, mut cfg) in [
        ("H100 x120", litegpu_fleet::FleetConfig::h100_ctrl_demo()),
        ("Lite x120", litegpu_fleet::FleetConfig::lite_ctrl_demo()),
    ] {
        cfg.instances = 120;
        cfg.horizon_s = 2.0 * 3600.0;
        cfg.failure_acceleration = 20_000.0;
        cfg.workload = litegpu_fleet::WorkloadSpec::multi_tenant_demo(1.5);
        match litegpu_fleet::run(&cfg, 42) {
            Ok(r) => {
                t.row_owned(vec![
                    name.to_string(),
                    r.controller.clone(),
                    format!("{:.1}", r.avg_live_instances),
                    format!("{}/{}", r.scale_ups, r.scale_downs),
                    format!("{:.1}", r.energy_j as f64 / 1e6),
                    format!("{:.1}", r.idle_energy_j as f64 / 1e6),
                    format!("{:.2}", r.energy_per_token_j),
                ]);
                for ten in &r.per_tenant {
                    tenants.row_owned(vec![
                        name.to_string(),
                        ten.name.clone(),
                        ten.priority.clone(),
                        format!("{}", ten.arrived),
                        format!("{}", ten.completed),
                        format!("{}", ten.shed),
                        format!("{:.4}", ten.ttft_attainment),
                        format!("{:.4}", ten.tbt_attainment),
                    ]);
                }
            }
            Err(e) => {
                t.row_owned(vec![name.to_string(), format!("error: {e}")]);
            }
        }
    }
    Experiment {
        id: "sim_ctrl",
        title: "Fleet control plane: autoscaling + power gating energy, H100 vs Lite",
        output: format!(
            "{}\nper-tenant SLO attainment:\n{}",
            t.render(),
            tenants.render()
        ),
    }
}

/// Ablations over the reconstructed modeling choices: decode overlap, KV
/// sharding policy, precision, collective constants, and the split factor
/// itself (see DESIGN.md §4 and `litegpu_roofline::ablation`).
pub fn ablations() -> Experiment {
    use litegpu_roofline::ablation;
    let mut out = String::new();
    let render = |title: &str, points: &[ablation::AblationPoint]| -> String {
        let mut t = TextTable::new(&[
            "variant",
            "Lite 70B",
            "Lite GPT3",
            "Lite 405B",
            "+MemBW 70B",
            "+MemBW GPT3",
            "+MemBW 405B",
        ]);
        let fmt = |v: f64| {
            if v.is_nan() {
                "-".to_string()
            } else {
                format!("{v:.2}")
            }
        };
        for p in points {
            t.row_owned(vec![
                p.label.clone(),
                fmt(p.lite[0]),
                fmt(p.lite[1]),
                fmt(p.lite[2]),
                fmt(p.lite_mem_bw[0]),
                fmt(p.lite_mem_bw[1]),
                fmt(p.lite_mem_bw[2]),
            ]);
        }
        format!("-- {title} --\n{}\n", t.render())
    };
    if let Ok(p) = ablation::overlap_ablation() {
        out.push_str(&render("decode overlap semantics", &p));
    }
    if let Ok(p) = ablation::gqa_policy_ablation() {
        out.push_str(&render("KV sharding policy", &p));
    }
    if let Ok(p) = ablation::precision_ablation() {
        out.push_str(&render("precision", &p));
    }
    if let Ok(p) = ablation::alpha_sensitivity(&[0.0, 1.0, 2.0, 5.0, 10.0]) {
        out.push_str(&render("per-collective software overhead", &p));
    }
    if let Ok(rows) = ablation::split_factor_study(&catalog::h100(), &[2, 4, 8, 16]) {
        let mut t = TextTable::new(&[
            "split",
            "plain decode eff",
            "+MemBW decode eff",
            "+MemBW shoreline",
        ]);
        for r in rows {
            t.row_owned(vec![
                r.split.to_string(),
                format!("{:.2}", r.plain_efficiency),
                r.mem_bw_efficiency
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|| "infeasible".into()),
                r.mem_bw_shoreline_util
                    .map(|v| format!("{:.0}%", v * 100.0))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        out.push_str(&format!(
            "-- split factor (Llama3-70B decode, vs H100) --\n{}\n",
            t.render()
        ));
    }
    Experiment {
        id: "ablations",
        title: "Ablations over reconstructed modeling choices",
        output: out,
    }
}

/// Runs every experiment with paper-default parameters.
pub fn run_all() -> Vec<Experiment> {
    let params = EngineParams::paper_defaults();
    let mut out = vec![
        table1(),
        fig1(),
        fig2(),
        claim_yield(),
        claim_shoreline(),
        claim_network(),
        claim_blast_radius(),
        claim_power(),
        claim_cost_perf(&params),
        sim_serving(),
        sim_fleet(),
        sim_ctrl(),
        ablations(),
    ];
    if let Ok((_, e)) = fig3a(&params) {
        out.insert(3, e);
    }
    if let Ok((_, e)) = fig3b(&params) {
        out.insert(4, e);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_six_configs() {
        let e = table1();
        for name in [
            "H100",
            "Lite",
            "Lite+NetBW",
            "Lite+NetBW+FLOPS",
            "Lite+MemBW",
            "Lite+MemBW+NetBW",
        ] {
            assert!(e.output.contains(name), "missing {name}");
        }
        assert!(e.output.contains("2000"));
        assert!(e.output.contains("112.5"));
    }

    #[test]
    fn fig1_covers_generations() {
        let e = fig1();
        for name in ["V100", "A100", "H100", "B200", "Lite-H100"] {
            assert!(e.output.contains(name), "missing {name}");
        }
    }

    #[test]
    fn fig2_renders_plan() {
        let e = fig2();
        assert!(e.output.contains("Lite-GPU 4"));
    }

    #[test]
    fn claim_yield_reports_gain() {
        let e = claim_yield();
        assert!(e.output.contains("poisson"));
        assert!(e.output.contains("yield gain"));
    }

    #[test]
    fn claim_shoreline_doubles() {
        let e = claim_shoreline();
        assert!(e.output.contains("2.0"), "{}", e.output);
    }

    #[test]
    fn claim_network_holds() {
        let e = claim_network();
        assert!(e.output.contains("all three §3 claims hold"));
    }

    #[test]
    fn claim_blast_radius_reports_quarters() {
        let e = claim_blast_radius();
        assert!(e.output.contains("12.5%"));
        assert!(e.output.contains("3.1%"));
    }

    #[test]
    fn claim_power_reports_savings() {
        let e = claim_power();
        assert!(e.output.contains("gate-to-efficiency"));
    }

    #[test]
    fn ablations_render_all_sections() {
        let e = ablations();
        for section in [
            "decode overlap semantics",
            "KV sharding policy",
            "precision",
            "software overhead",
            "split factor",
        ] {
            assert!(e.output.contains(section), "missing {section}");
        }
    }

    #[test]
    fn serving_sim_renders_three_rows() {
        let e = sim_serving();
        assert!(e.output.contains("H100 monolithic"));
        assert!(e.output.contains("Lite phase-split"));
        assert!(!e.output.contains("error:"), "{}", e.output);
    }
}

//! The end-to-end Lite-GPU cluster designer.
//!
//! Ties every substrate together: start from a parent GPU, choose a split
//! and a customization, and receive a validated design with its
//! manufacturing, cooling, performance and reliability consequences — the
//! whole paper in one API call.

use litegpu_cluster::failure::{ClusterReliability, FailureModel};
use litegpu_fab::cost::{h100_and_lite_package_models, ManufacturingComparison};
use litegpu_roofline::{figures, EngineParams};
use litegpu_specs::cooling::{self, CoolingAssessment};
use litegpu_specs::die::ShorelineBudget;
use litegpu_specs::{GpuSpec, LiteCustomization, LiteDerivation, SpecError};

/// Designer input: the parent GPU, the split, and the customization.
#[derive(Debug, Clone)]
pub struct ClusterDesigner {
    /// The GPU being replaced.
    pub parent: GpuSpec,
    /// Lite-GPUs per parent GPU.
    pub split: u32,
    /// Shoreline/clock customization.
    pub customization: LiteCustomization,
    /// Roofline parameters for the performance assessment.
    pub params: EngineParams,
}

/// A complete, validated design.
#[derive(Debug, Clone)]
pub struct ClusterDesign {
    /// The derived Lite-GPU spec.
    pub lite: GpuSpec,
    /// The parent spec.
    pub parent: GpuSpec,
    /// Manufacturing comparison (per parent-GPU-equivalent).
    pub manufacturing: ManufacturingComparison,
    /// Cooling assessment of the Lite package.
    pub cooling: CoolingAssessment,
    /// Shoreline utilization of the customization, 0..=1.
    pub shoreline_utilization: f64,
    /// Blast-radius improvement factor vs. the parent cluster.
    pub blast_radius_gain: f64,
    /// Expected available-FLOPS fraction of the Lite cluster.
    pub available_flops_fraction: f64,
    /// Figure-3-style decode comparison on Llama3-70B: Lite tokens/s/SM
    /// normalized to the parent (1.0 = parity).
    pub decode_efficiency_vs_parent: f64,
    /// Prefill counterpart.
    pub prefill_efficiency_vs_parent: f64,
}

impl ClusterDesigner {
    /// A designer for the paper's default 4-way H100 split.
    pub fn paper_default() -> Self {
        Self {
            parent: litegpu_specs::catalog::h100(),
            split: 4,
            customization: LiteCustomization::plain("Lite"),
            params: EngineParams::paper_defaults(),
        }
    }

    /// Runs the full design pipeline.
    pub fn design(&self) -> Result<ClusterDesign, DesignError> {
        let derivation = LiteDerivation::new(self.parent.clone(), self.split)?;
        let lite = derivation.customized(&self.customization)?;

        // Manufacturing: reuse the calibrated package models, scaled to
        // this split via the die-cost models.
        let (big_pkg, lite_pkg) = h100_and_lite_package_models()?;
        let manufacturing = ManufacturingComparison::compare(&big_pkg, &lite_pkg, self.split)?;

        let cooling = cooling::assess(&lite)?;
        let budget = ShorelineBudget::for_die(&lite.die);
        let shoreline_utilization = budget.utilization(lite.mem_bw_gbps, lite.net_bw_gbps);

        let fm = FailureModel::default_for(&self.parent);
        let parent_rel = ClusterReliability::new(self.parent.clone(), self.parent.max_gpus, fm)?;
        let lite_rel = ClusterReliability::new(lite.clone(), lite.max_gpus, fm)?;
        let blast_radius_gain =
            parent_rel.blast_radius_fraction() / lite_rel.blast_radius_fraction();

        // Performance: best decode and prefill efficiency on Llama3-70B.
        let arch = litegpu_workload::models::llama3_70b();
        let parent_dec = litegpu_roofline::search::best_decode(&self.parent, &arch, &self.params)?;
        let lite_dec = litegpu_roofline::search::best_decode(&lite, &arch, &self.params)?;
        let parent_pre = litegpu_roofline::search::best_prefill(&self.parent, &arch, &self.params)?;
        let lite_pre = litegpu_roofline::search::best_prefill(&lite, &arch, &self.params)?;

        Ok(ClusterDesign {
            manufacturing,
            cooling,
            shoreline_utilization,
            blast_radius_gain,
            available_flops_fraction: lite_rel.expected_available_flops_fraction(),
            decode_efficiency_vs_parent: lite_dec.tokens_per_s_per_sm
                / parent_dec.tokens_per_s_per_sm,
            prefill_efficiency_vs_parent: lite_pre.tokens_per_s_per_sm
                / parent_pre.tokens_per_s_per_sm,
            lite,
            parent: self.parent.clone(),
        })
    }
}

/// A Figure-2-style replacement plan: one parent GPU becomes `split`
/// Lite-GPUs; rendered with the headline deltas annotated.
pub fn replacement_plan(split: u32) -> Result<String, DesignError> {
    let designer = ClusterDesigner {
        split,
        ..ClusterDesigner::paper_default()
    };
    let d = designer.design()?;
    let mut out = String::new();
    out.push_str(&format!(
        "One {} ({:.0} mm² die, {:.0} W, {} SMs)\n",
        d.parent.name,
        d.parent.die.area_mm2(),
        d.parent.tdp_w,
        d.parent.sms
    ));
    out.push_str("  │ replaced by co-packaged-optics connected Lite-GPUs\n  ▼\n");
    for i in 0..split {
        out.push_str(&format!(
            "  [Lite-GPU {}] {:.0} mm² die, {:.0} W, {} SMs, {:.0} GB/s HBM + {:.1} GB/s optics\n",
            i + 1,
            d.lite.die.area_mm2(),
            d.lite.tdp_w,
            d.lite.sms,
            d.lite.mem_bw_gbps,
            d.lite.net_bw_gbps
        ));
    }
    out.push_str(&format!(
        "yield gain {:.2}x | compute-silicon cost {:.0}% lower | blast radius {:.0}x smaller\n",
        d.manufacturing.yield_gain,
        d.manufacturing.silicon_saving * 100.0,
        d.blast_radius_gain
    ));
    out.push_str(&format!(
        "cooling: {:?} (headroom {:.0} W) | shoreline used: {:.0}%\n",
        d.cooling.class,
        d.cooling.headroom_w,
        d.shoreline_utilization * 100.0
    ));
    let _ = figures::Phase::Prefill; // Anchor the figures module as public API.
    Ok(out)
}

/// Designer-level error: any substrate failure.
#[derive(Debug)]
pub enum DesignError {
    /// Spec/derivation failure.
    Spec(litegpu_specs::SpecError),
    /// Fab-model failure.
    Fab(litegpu_fab::FabError),
    /// Cluster-model failure.
    Cluster(litegpu_cluster::ClusterError),
    /// Roofline failure.
    Roofline(litegpu_roofline::RooflineError),
}

impl core::fmt::Display for DesignError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DesignError::Spec(e) => write!(f, "spec: {e}"),
            DesignError::Fab(e) => write!(f, "fab: {e}"),
            DesignError::Cluster(e) => write!(f, "cluster: {e}"),
            DesignError::Roofline(e) => write!(f, "roofline: {e}"),
        }
    }
}

impl std::error::Error for DesignError {}

impl From<SpecError> for DesignError {
    fn from(e: SpecError) -> Self {
        DesignError::Spec(e)
    }
}
impl From<litegpu_fab::FabError> for DesignError {
    fn from(e: litegpu_fab::FabError) -> Self {
        DesignError::Fab(e)
    }
}
impl From<litegpu_cluster::ClusterError> for DesignError {
    fn from(e: litegpu_cluster::ClusterError) -> Self {
        DesignError::Cluster(e)
    }
}
impl From<litegpu_roofline::RooflineError> for DesignError {
    fn from(e: litegpu_roofline::RooflineError) -> Self {
        DesignError::Roofline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_design_matches_headlines() {
        let d = ClusterDesigner::paper_default().design().unwrap();
        assert!((d.manufacturing.yield_gain - 1.8).abs() < 0.1);
        assert!(d.manufacturing.silicon_saving > 0.4);
        assert!((d.blast_radius_gain - 4.0).abs() < 1e-9);
        assert!(d.shoreline_utilization <= 1.0);
        assert!(d.cooling.max_sustained_clock >= 1.1);
        // Base Lite decode efficiency is below parity (Figure 3b).
        assert!(d.decode_efficiency_vs_parent < 1.0);
        assert!(d.decode_efficiency_vs_parent > 0.5);
    }

    #[test]
    fn mem_bw_customization_beats_parity() {
        let designer = ClusterDesigner {
            customization: LiteCustomization {
                name: "Lite+MemBW".into(),
                mem_bw_factor: 2.0,
                net_bw_factor: 1.0,
                clock_factor: 1.0,
            },
            ..ClusterDesigner::paper_default()
        };
        let d = designer.design().unwrap();
        assert!(
            d.decode_efficiency_vs_parent > 1.0,
            "got {}",
            d.decode_efficiency_vs_parent
        );
    }

    #[test]
    fn replacement_plan_mentions_key_numbers() {
        let plan = replacement_plan(4).unwrap();
        assert!(plan.contains("H100"));
        assert_eq!(plan.matches("[Lite-GPU").count(), 4);
        assert!(plan.contains("yield gain"));
    }

    #[test]
    fn infeasible_customization_surfaces_error() {
        let designer = ClusterDesigner {
            customization: LiteCustomization {
                name: "impossible".into(),
                mem_bw_factor: 8.0,
                net_bw_factor: 4.0,
                clock_factor: 1.0,
            },
            ..ClusterDesigner::paper_default()
        };
        assert!(matches!(designer.design(), Err(DesignError::Spec(_))));
    }
}

//! Roofline explorer: sweep batch size for one model/GPU pair and watch
//! the bottleneck migrate from memory to compute to network.
//!
//! Run with `cargo run --release --example roofline_explorer [model]`
//! where `model` is one of `llama70`, `gpt3`, `llama405` (default
//! `llama70`).

use litegpu_repro::plot::line::LineChart;
use litegpu_repro::plot::table::TextTable;
use litegpu_repro::prelude::*;
use litegpu_repro::roofline::{capacity, decode};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "llama70".into());
    let arch = match arg.as_str() {
        "gpt3" => models::gpt3_175b(),
        "llama405" => models::llama3_405b(),
        _ => models::llama3_70b(),
    };
    let params = EngineParams::paper_defaults();
    println!("== Decode batch sweep: {} ==", arch.name);

    let mut xs = Vec::new();
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for spec in [
        catalog::h100(),
        catalog::lite_base(),
        catalog::lite_mem_bw(),
    ] {
        let gpus = (1..=spec.max_gpus)
            .find(|&g| capacity::max_batch(&spec, &arch, g, 2000, &params) >= 64)
            .unwrap_or(spec.max_gpus);
        let bmax = capacity::max_batch(&spec, &arch, gpus, 2000, &params);
        let mut t = TextTable::new(&["batch", "TBT ms", "tok/s", "tok/s/SM", "bound"]);
        let mut ys = Vec::new();
        let mut batches = Vec::new();
        let mut b = 1u32;
        while b <= bmax {
            if let Ok(e) = decode::evaluate(&spec, &arch, gpus, b, &params) {
                t.row_owned(vec![
                    b.to_string(),
                    format!("{:.2}", e.tbt_s * 1e3),
                    format!("{:.0}", e.tokens_per_s),
                    format!("{:.2}", e.tokens_per_s_per_sm),
                    format!("{:?}", e.time.bound),
                ]);
                batches.push(b as f64);
                ys.push(e.tokens_per_s_per_sm);
            }
            b = (b * 2).max(b + 1);
        }
        println!(
            "-- {} ({} GPUs, capacity {} seqs) --",
            spec.name, gpus, bmax
        );
        println!("{}", t.render());
        if xs.is_empty() || batches.len() > xs.len() {
            xs = batches.clone();
        }
        ys.resize(xs.len().max(ys.len()), *ys.last().unwrap_or(&0.0));
        series.push((spec.name.clone(), ys));
    }

    // Align series lengths for the chart (pad short ones with their last
    // value so all share the x axis).
    let n = xs.len();
    for (_, ys) in &mut series {
        let last = *ys.last().unwrap_or(&0.0);
        ys.resize(n, last);
    }
    let mut chart = LineChart::new(
        format!("{} decode efficiency vs batch", arch.name),
        "batch (log steps)",
        "tokens/s/SM",
    );
    chart.set_x((0..n).map(|i| i as f64).collect());
    for (name, ys) in series {
        chart.add_series(name, ys);
    }
    println!("{}", chart.render(60, 14));
}

//! Quickstart: design a Lite-GPU, check the paper's headline numbers.
//!
//! Run with `cargo run --release --example quickstart`.

use litegpu_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Derive a Lite-GPU: one H100 split four ways.
    let designer = ClusterDesigner::paper_default();
    let design = designer.design()?;

    println!(
        "Parent : {} ({} SMs, {:.0} W)",
        design.parent.name, design.parent.sms, design.parent.tdp_w
    );
    println!(
        "Lite   : {} ({} SMs, {:.0} W)",
        design.lite.name, design.lite.sms, design.lite.tdp_w
    );
    println!();
    println!(
        "yield gain              : {:.2}x  (paper: ~1.8x)",
        design.manufacturing.yield_gain
    );
    println!(
        "compute-silicon saving  : {:.0}%   (paper: ~50%)",
        design.manufacturing.silicon_saving * 100.0
    );
    println!("blast-radius improvement: {:.0}x", design.blast_radius_gain);
    println!(
        "cooling class           : {:?} (sustained clock up to {:.2}x)",
        design.cooling.class, design.cooling.max_sustained_clock
    );
    println!(
        "decode efficiency       : {:.2}x of H100 per SM",
        design.decode_efficiency_vs_parent
    );
    println!(
        "prefill efficiency      : {:.2}x of H100 per SM",
        design.prefill_efficiency_vs_parent
    );

    // 2. The customized variant the paper recommends for decode.
    let designer = ClusterDesigner {
        customization: LiteCustomization {
            name: "Lite+MemBW".into(),
            mem_bw_factor: 2.0,
            net_bw_factor: 1.0,
            clock_factor: 1.0,
        },
        ..ClusterDesigner::paper_default()
    };
    let membw = designer.design()?;
    println!();
    println!(
        "Lite+MemBW decode efficiency: {:.2}x of H100 per SM (spends the doubled shoreline on HBM)",
        membw.decode_efficiency_vs_parent
    );

    // 3. One Figure-3 row straight from the roofline search.
    let params = EngineParams::paper_defaults();
    let best = litegpu_repro::roofline::search::best_decode(
        &catalog::lite_mem_bw(),
        &models::llama3_70b(),
        &params,
    )?;
    println!();
    println!(
        "Best Llama3-70B decode on Lite+MemBW: {} GPUs, batch {}, TBT {:.1} ms, {:.0} tok/s",
        best.gpus,
        best.batch,
        best.tbt_s * 1e3,
        best.tokens_per_s
    );
    Ok(())
}

//! Blast-radius and hot-spare analysis: how many spares does each cluster
//! type need, and what do they cost?
//!
//! Run with `cargo run --release --example failure_analysis`.

use litegpu_repro::cluster::failure::{
    monte_carlo_availability, spares_for_target, ClusterReliability, FailureModel,
};
use litegpu_repro::plot::table::TextTable;
use litegpu_repro::specs::catalog;

fn main() {
    let fm = FailureModel::default_for(&catalog::h100());

    println!("== Deterministic reliability (per 4-instance serving fleet) ==");
    let mut t = TextTable::new(&["metric", "8x H100/inst", "32x Lite/inst"]);
    let h = ClusterReliability::new(catalog::h100(), 32, fm).expect("valid");
    let l = ClusterReliability::new(catalog::lite_base(), 128, fm).expect("valid");
    t.row_owned(vec![
        "blast radius".into(),
        format!("{:.2}% of fleet", h.blast_radius_fraction() * 100.0),
        format!("{:.2}% of fleet", l.blast_radius_fraction() * 100.0),
    ]);
    t.row_owned(vec![
        "failures/year".into(),
        format!("{:.2}", h.failures_per_year()),
        format!("{:.2}", l.failures_per_year()),
    ]);
    t.row_owned(vec![
        "avail. FLOPS".into(),
        format!("{:.4}%", h.expected_available_flops_fraction() * 100.0),
        format!("{:.4}%", l.expected_available_flops_fraction() * 100.0),
    ]);
    println!("{}", t.render());

    println!("== Availability vs spare count (Monte Carlo, 200 sim-years) ==");
    let mut t = TextTable::new(&[
        "spares",
        "H100 availability",
        "Lite availability",
        "H100 ovh",
        "Lite ovh",
    ]);
    for spares in [0u32, 1, 2, 4] {
        let mh = monte_carlo_availability(&catalog::h100(), &fm, 4, 8, spares, 200.0, 42)
            .expect("valid");
        let ml = monte_carlo_availability(&catalog::lite_base(), &fm, 4, 32, spares, 200.0, 42)
            .expect("valid");
        t.row_owned(vec![
            spares.to_string(),
            format!("{:.5}", mh.instance_availability),
            format!("{:.5}", ml.instance_availability),
            format!("{:.2}%", mh.spare_overhead * 100.0),
            format!("{:.2}%", ml.spare_overhead * 100.0),
        ]);
    }
    println!("{}", t.render());

    println!("== Spares needed for 99.99% instance availability ==");
    for (name, gpu, k) in [
        ("H100", catalog::h100(), 8u32),
        ("Lite", catalog::lite_base(), 32u32),
    ] {
        match spares_for_target(&gpu, &fm, 4, k, 0.9999, 200.0, 42) {
            Ok((spares, achieved, overhead)) => println!(
                "  {name}: {spares} spare unit(s) -> availability {achieved:.5}, \
                 fleet overhead {:.2}% (unit = 1 {name} GPU)",
                overhead * 100.0
            ),
            Err(e) => println!("  {name}: {e}"),
        }
    }
    println!();
    println!(
        "A Lite spare unit is ~1/4 the silicon and a fraction of the cost of an H100 spare:\n\
         equal unit counts protect equally but cost 4x less fleet capacity."
    );
}

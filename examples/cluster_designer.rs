//! Design-space exploration: sweep split factors and shoreline
//! customizations, report economics + performance for each candidate.
//!
//! Run with `cargo run --release --example cluster_designer`.

use litegpu_repro::fab::yield_model::YieldModel;
use litegpu_repro::plot::table::TextTable;
use litegpu_repro::prelude::*;

fn main() {
    // Part 1: how does the split factor trade yield against network scale?
    println!("== Split-factor sweep (plain 1/n Lite-GPUs) ==");
    let mut t = TextTable::new(&[
        "split",
        "die mm²",
        "yield",
        "gain",
        "fleet size",
        "decode eff",
        "prefill eff",
    ]);
    for split in [2u32, 4, 8] {
        let designer = ClusterDesigner {
            split,
            ..ClusterDesigner::paper_default()
        };
        match designer.design() {
            Ok(d) => {
                let y = YieldModel::Poisson.yield_fraction(d.lite.die.area_mm2(), 0.1);
                let gain = YieldModel::Poisson.split_yield_gain(814.0, 0.1, split);
                t.row_owned(vec![
                    split.to_string(),
                    format!("{:.0}", d.lite.die.area_mm2()),
                    format!("{y:.2}"),
                    format!("{gain:.2}x"),
                    d.lite.max_gpus.to_string(),
                    format!("{:.2}", d.decode_efficiency_vs_parent),
                    format!("{:.2}", d.prefill_efficiency_vs_parent),
                ]);
            }
            Err(e) => {
                t.row_owned(vec![split.to_string(), format!("error: {e}")]);
            }
        }
    }
    println!("{}", t.render());

    // Part 2: customization sweep at the paper's 4-way split.
    println!("== Customization sweep (4-way split) ==");
    let mut t = TextTable::new(&[
        "variant",
        "mem GB/s",
        "net GB/s",
        "TFLOPS",
        "TDP W",
        "shoreline",
        "decode eff",
        "prefill eff",
    ]);
    let candidates = [
        ("Lite", 1.0, 1.0, 1.0),
        ("Lite+NetBW", 1.0, 2.0, 1.0),
        ("Lite+MemBW", 2.0, 1.0, 1.0),
        ("Lite+MemBW+NetBW", 2.0, 2.0, 1.0),
        ("Lite+NetBW+FLOPS", 0.5, 2.0, 1.1),
        ("Lite+OC1.2", 1.0, 1.0, 1.2),
    ];
    for (name, mem, net, clock) in candidates {
        let designer = ClusterDesigner {
            customization: LiteCustomization {
                name: name.into(),
                mem_bw_factor: mem,
                net_bw_factor: net,
                clock_factor: clock,
            },
            ..ClusterDesigner::paper_default()
        };
        match designer.design() {
            Ok(d) => {
                t.row_owned(vec![
                    name.to_string(),
                    format!("{:.0}", d.lite.mem_bw_gbps),
                    format!("{:.1}", d.lite.net_bw_gbps),
                    format!("{:.0}", d.lite.tflops),
                    format!("{:.0}", d.lite.tdp_w),
                    format!("{:.0}%", d.shoreline_utilization * 100.0),
                    format!("{:.2}", d.decode_efficiency_vs_parent),
                    format!("{:.2}", d.prefill_efficiency_vs_parent),
                ]);
            }
            Err(e) => {
                t.row_owned(vec![name.to_string(), format!("infeasible: {e}")]);
            }
        }
    }
    println!("{}", t.render());
    println!("(efficiency = best tokens/s/SM on Llama3-70B, normalized to the H100 cluster)");
}

//! Serving-level comparison: monolithic vs. Splitwise-style phase-split
//! scheduling on H100 and Lite clusters, with a failure-injection round.
//!
//! Run with `cargo run --release --example splitwise_serving`.

use litegpu_repro::sim::failover::FailurePlan;
use litegpu_repro::sim::{simulate, SchedulerKind, ServingConfig};

fn report(name: &str, cfg: &ServingConfig, seed: u64) {
    match simulate(cfg, seed) {
        Ok(r) => println!(
            "{name:<22} served {:>4}/{:<4}  {:>7.0} tok/s  TTFT p50/p99 {:>6.0}/{:<6.0} ms  \
             TBT p99 {:>5.1} ms  TBT SLO {:>5.1}%  avail {:>6.2}%",
            r.completed,
            r.arrived,
            r.throughput_tps,
            r.ttft_p50_s * 1e3,
            r.ttft_p99_s * 1e3,
            r.tbt_p99_s * 1e3,
            r.tbt_attainment * 100.0,
            r.availability * 100.0,
        ),
        Err(e) => println!("{name:<22} failed: {e}"),
    }
}

fn main() {
    println!("== Llama3-70B serving, 3 req/s, 120 s horizon ==");
    let mono = ServingConfig::monolithic_h100_demo();
    let split_h100 = ServingConfig::splitwise_h100_demo();
    let split_lite = ServingConfig::splitwise_lite_demo();
    report("H100 monolithic", &mono, 42);
    report("H100 phase-split", &split_h100, 42);
    report("Lite  phase-split", &split_lite, 42);

    println!();
    println!("== With accelerated failure injection (1/instance/minute) ==");
    let mut stress = FailurePlan::stress(0);
    stress.failures_per_instance_hour = 60.0;
    stress.repair_s = 120.0;
    for (name, base) in [
        ("H100 split, 0 spares", &split_h100),
        ("Lite  split, 0 spares", &split_lite),
    ] {
        let mut cfg = base.clone();
        cfg.failures = stress;
        report(name, &cfg, 7);
    }
    stress.spares = 2;
    for (name, base) in [
        ("H100 split, 2 spares", &split_h100),
        ("Lite  split, 2 spares", &split_lite),
    ] {
        let mut cfg = base.clone();
        cfg.failures = stress;
        report(name, &cfg, 7);
    }
    println!();
    println!(
        "note: a Lite spare is 1/4 the silicon of an H100 spare — same protection, less cost."
    );

    println!();
    println!("== Load sweep: phase-split H100, TBT SLO attainment vs arrival rate ==");
    for rate in [1.0, 2.0, 4.0, 6.0, 8.0] {
        let mut cfg = ServingConfig::splitwise_h100_demo();
        cfg.workload.rate_per_s = rate;
        cfg.scheduler = SchedulerKind::PhaseSplit {
            prefill_instances: 2,
        };
        match simulate(&cfg, 11) {
            Ok(r) => println!(
                "  {rate:>4.1} req/s: TBT p99 {:>5.1} ms, SLO {:>5.1}%, drained in {:>6.1} s",
                r.tbt_p99_s * 1e3,
                r.tbt_attainment * 100.0,
                r.drained_at_s
            ),
            Err(e) => println!("  {rate:>4.1} req/s: {e}"),
        }
    }
}

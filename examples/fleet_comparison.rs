//! Fleet-scale head-to-head: an H100-class fleet vs. a Lite-GPU fleet
//! with the same aggregate silicon, under the three-tenant mixed-priority
//! diurnal workload with accelerated failure injection — both driven by
//! the `litegpu-ctrl` control plane (autoscaler + cell router + admission
//! control), with the power policy each architecture actually has: H100
//! parks at the DVFS idle floor, Lite-GPU instances power-gate off.
//!
//! Run with `cargo run --release --example fleet_comparison`.

use litegpu_repro::fleet::{run, FleetConfig, WorkloadSpec};

fn main() {
    let mut h100 = FleetConfig::h100_ctrl_demo();
    let mut lite = FleetConfig::lite_ctrl_demo();
    for cfg in [&mut h100, &mut lite] {
        cfg.instances = 200;
        cfg.horizon_s = 4.0 * 3600.0;
        cfg.failure_acceleration = 3_000.0;
        cfg.spares_per_cell = 2;
        cfg.workload = WorkloadSpec::multi_tenant_demo(1.5);
    }

    println!("Simulating 200-instance controlled fleets for 4 simulated hours each...\n");
    let mut reports = Vec::new();
    for (name, cfg) in [("H100", &h100), ("Lite", &lite)] {
        let start = std::time::Instant::now();
        let r = run(cfg, 42).expect("fleet simulation");
        println!(
            "{name:>5}: {} [{:.2} s wall]",
            r.summary(),
            start.elapsed().as_secs_f64()
        );
        reports.push((name, r));
    }

    let (_, h) = &reports[0];
    let (_, l) = &reports[1];
    println!("\nHead-to-head (same aggregate silicon, same spare-unit count):");
    println!(
        "  availability:   H100 {:.4} vs Lite {:.4}",
        h.availability, l.availability
    );
    println!(
        "  goodput tok/s:  H100 {:.0} vs Lite {:.0}",
        h.goodput_tps, l.goodput_tps
    );
    println!(
        "  spare overhead: H100 {:.2}% vs Lite {:.2}% of fleet GPUs (x{:.1} cheaper)",
        h.spare_overhead * 100.0,
        l.spare_overhead * 100.0,
        h.spare_overhead / l.spare_overhead
    );
    println!(
        "  failures:       H100 {} ({} absorbed by spares) vs Lite {} ({} absorbed)",
        h.failures, h.spare_hits, l.failures, l.spare_hits
    );
    println!("\nElasticity and energy (the §3 management argument):");
    println!(
        "  mean live pool:   H100 {:.1} vs Lite {:.1} of {} instances",
        h.avg_live_instances, l.avg_live_instances, h.instances
    );
    println!(
        "  autoscaler:       H100 {} ups / {} parks vs Lite {} ups / {} parks",
        h.scale_ups, h.scale_downs, l.scale_ups, l.scale_downs
    );
    println!(
        "  energy per token: H100 {:.3} J vs Lite {:.3} J",
        h.energy_per_token_j, l.energy_per_token_j
    );
    println!(
        "  idle energy:      H100 {:.1} MJ vs Lite {:.1} MJ (x{:.1} — parked H100s can only \
         down-clock; parked Lite-GPUs power off)",
        h.idle_energy_j as f64 / 1e6,
        l.idle_energy_j as f64 / 1e6,
        h.idle_energy_j as f64 / (l.idle_energy_j as f64).max(1.0),
    );

    println!("\nPer-tenant SLO attainment (each against its own targets):");
    for (name, r) in &reports {
        println!("  {name}:");
        for line in r.tenant_summary().lines() {
            println!("    {line}");
        }
    }

    // Clock-aware serving under DVFS: the same fleets with step costs
    // priced on the SLO_MIN_CLOCK..=1.0 operating-point grid and the
    // control plane retuning live instances per cell. Decode is
    // memory-bound, so down-clocked steps barely stretch while dynamic
    // power falls cubically — energy per token drops at essentially
    // unchanged interactive SLO attainment.
    println!("\nClock-aware serving (serving-time DVFS vs nominal clocks):");
    for (name, cfg) in [("H100", &h100), ("Lite", &lite)] {
        let mut dcfg = cfg.clone();
        dcfg.ctrl = dcfg.ctrl.map(|c| c.with_dvfs());
        let dvfs = run(&dcfg, 42).expect("dvfs simulation");
        let nominal = reports
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, r)| r)
            .expect("nominal twin");
        let d = dvfs.dvfs.as_ref().expect("dvfs report");
        let interactive = |r: &litegpu_repro::fleet::FleetReport| {
            r.interactive_attainment()
                .map(|(ttft, _)| ttft)
                .unwrap_or(f64::NAN)
        };
        println!(
            "  {name}: energy/token {:.3} -> {:.3} J ({:+.1}%), interactive TTFT attainment \
             {:.4} -> {:.4}",
            nominal.energy_per_token_j,
            dvfs.energy_per_token_j,
            100.0 * (dvfs.energy_per_token_j / nominal.energy_per_token_j - 1.0),
            interactive(nominal),
            interactive(&dvfs),
        );
        println!("    {}", dvfs.dvfs_summary());
        println!(
            "    clock histogram: {}",
            d.clock_points
                .iter()
                .zip(&d.clock_tick_share)
                .map(|(c, s)| format!("{c:.2}:{:.0}%", 100.0 * s))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }

    // Phase-split serving (Splitwise at fleet scale): same fleets, each
    // cell partitioned into prefill and decode pools with KV hand-offs
    // priced against a per-cell link budget.
    println!("\nPhase-split serving (prefill/decode pools + KV link):");
    for (name, cfg) in [("H100", &h100), ("Lite", &lite)] {
        let split = run(&cfg.clone().with_phase_split(), 42).expect("split simulation");
        let mono = reports
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, r)| r)
            .expect("monolithic twin");
        let kv = split.kv_transfer.as_ref().expect("split report");
        println!(
            "  {name}: p99 TBT {:.4} s vs {:.4} s monolithic ({:.1}x tighter — decode pool \
             isolated from prefill), p99 TTFT {:.3} s vs {:.3} s (KV-transfer premium)",
            split.tbt_p99_s,
            mono.tbt_p99_s,
            mono.tbt_p99_s / split.tbt_p99_s.max(1e-12),
            split.ttft_p99_s,
            mono.ttft_p99_s,
        );
        println!("    {}", split.kv_summary());
        println!(
            "    pools rebalanced {} times; conservation: {} B queued = {} B delivered + {} B \
             in flight",
            kv.phase_rebalances, kv.bytes_queued, kv.bytes_delivered, kv.bytes_inflight_at_end
        );
    }
}

#!/usr/bin/env bash
# Full CI gate for the litegpu workspace. Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release --examples (workspace)"
cargo build --workspace --release --examples

echo "==> cargo doc --workspace --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test -q (workspace)"
cargo test --workspace -q

echo "==> multi-tenant determinism: byte-identical FleetReport at 1/2/8 threads"
./scripts/check_determinism.sh

echo "CI gate passed."

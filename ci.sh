#!/usr/bin/env bash
# CI gate for the litegpu workspace. The GitHub workflow
# (.github/workflows/ci.yml) invokes this same script — `lint` and
# `build-test` run as parallel jobs there — so the local gate and CI
# cannot drift.
#
# Usage: ci.sh [lint|build-test|all]   (default: all)
set -euo pipefail
cd "$(dirname "$0")"

lint() {
  echo "==> cargo fmt --check"
  cargo fmt --check

  echo "==> cargo clippy --workspace --all-targets -- -D warnings"
  cargo clippy --workspace --all-targets -- -D warnings

  echo "==> cargo doc --workspace --no-deps (deny warnings)"
  RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
}

build_test() {
  echo "==> cargo build --release"
  cargo build --release

  echo "==> cargo build --release --examples (workspace)"
  cargo build --workspace --release --examples

  echo "==> cargo test -q (workspace)"
  cargo test --workspace -q

  echo "==> cargo test --doc (workspace doc-tests)"
  cargo test --workspace --doc -q

  echo "==> fleet determinism + scale smoke (sim_fleet)"
  cargo run --release -q -p litegpu-bench --bin sim_fleet -- \
    --gpu lite --instances 200 --hours 2 --quiet-json

  echo "==> fleet-scale smoke: 100k instances through the event-queue scheduler"
  cargo run --release -q -p litegpu-bench --bin sim_fleet -- \
    --gpu lite --instances 100000 --cell-size 64 --hours 2 --rate 0.0005 \
    --control-interval 300 --ctrl auto --workload multi --serving mono \
    --no-baseline --shards 0 --threads 4 --seed 42 --quiet-json

  echo "==> phase-split smoke: split-vs-mono headline + KV accounting (sim_fleet --serving split)"
  cargo run --release -q -p litegpu-bench --bin sim_fleet -- \
    --gpu both --instances 64 --cell-size 8 --hours 1 --rate 3 \
    --serving split --quiet-json

  echo "==> control-plane smoke: autoscale + gating + routing + admission + DVFS headline (sim_ctrl --dvfs)"
  cargo run --release -q -p litegpu-bench --bin sim_ctrl -- \
    --instances 100 --hours 4 --dvfs --quiet-json

  echo "==> balancer smoke: skewed fleet, balanced-vs-isolated SLO + energy/token headline (sim_ctrl --balancer --skew 2x2.5)"
  cargo run --release -q -p litegpu-bench --bin sim_ctrl -- \
    --instances 64 --cell-size 8 --hours 0.25 --accel 50000 \
    --balancer --skew 2x2.5 --quiet-json

  echo "==> chaos smoke: campaign sweep, H100-vs-Lite availability under correlated failures (sim_chaos --smoke --series)"
  cargo run --release -q -p litegpu-bench --bin sim_chaos -- \
    --smoke --series --quiet-json

  echo "==> telemetry smoke: deterministic series + Perfetto trace + engine profile (sim_fleet --series --trace --profile)"
  mkdir -p target/ci-telemetry
  cargo run --release -q -p litegpu-bench --bin sim_fleet -- \
    --gpu lite --instances 64 --cell-size 8 --hours 1 --accel 50000 \
    --ctrl auto --workload multi --serving split --chaos rack --no-baseline \
    --series target/ci-telemetry/series.jsonl --series-dt 60000000 \
    --trace target/ci-telemetry/trace.json --trace-every 16 \
    --profile --quiet-json
  for artifact in series.jsonl trace.json; do
    test -s "target/ci-telemetry/$artifact" || {
      echo "TELEMETRY SMOKE: target/ci-telemetry/$artifact missing or empty" >&2; exit 1; }
  done

  echo "==> TCO smoke: design-space sweep, Pareto frontier + H100-vs-Lite \$/Mtoken headline (sim_tco --smoke)"
  cargo run --release -q -p litegpu-bench --bin sim_tco -- \
    --smoke --quiet-json

  echo "==> determinism: byte-identical FleetReport at 1/2/8 threads, serving/control combos with and without chaos"
  ./scripts/check_determinism.sh

  echo "==> perf smoke: commit-stamped BENCH_fleet.json (base + dvfs + fleet100k) vs checked-in baseline, >20% regression gate"
  ./scripts/perf_smoke.sh
}

mode="${1:-all}"
case "$mode" in
  lint) lint ;;
  build-test) build_test ;;
  all)
    lint
    build_test
    ;;
  *)
    echo "usage: ci.sh [lint|build-test|all]" >&2
    exit 2
    ;;
esac

echo "CI gate ($mode) passed."

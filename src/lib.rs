//! Workspace umbrella crate for the `litegpu` suite.
//!
//! This crate exists so that the repository root can host the workspace-wide
//! `examples/` and `tests/` directories. It re-exports the public crates so
//! examples can write `use litegpu_repro::prelude::*;` or address each crate
//! directly.

pub use litegpu;
pub use litegpu_chaos as chaos;
pub use litegpu_cluster as cluster;
pub use litegpu_ctrl as ctrl;
pub use litegpu_fab as fab;
pub use litegpu_fleet as fleet;
pub use litegpu_net as net;
pub use litegpu_plot as plot;
pub use litegpu_roofline as roofline;
pub use litegpu_sim as sim;
pub use litegpu_specs as specs;
pub use litegpu_tco as tco;
pub use litegpu_telemetry as telemetry;
pub use litegpu_workload as workload;

/// Convenience re-exports of the most commonly used types across the suite.
pub mod prelude {
    pub use litegpu::prelude::*;
}

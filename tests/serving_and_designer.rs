//! End-to-end integration: the cluster designer and the serving
//! simulator, crossing every crate boundary in one pipeline.

use litegpu_repro::litegpu::designer::{replacement_plan, ClusterDesigner};
use litegpu_repro::prelude::*;
use litegpu_repro::sim::{simulate, SchedulerKind, ServingConfig};

#[test]
fn designer_pipeline_produces_consistent_report() {
    let d = ClusterDesigner::paper_default().design().expect("design");
    // Spec side matches the catalog derivation.
    assert_eq!(d.lite.sms, 33);
    assert_eq!(d.lite.max_gpus, 32);
    // Economics side matches the §2 claims.
    assert!((d.manufacturing.yield_gain - 1.8).abs() < 0.1);
    // Performance side matches Figure 3's direction.
    assert!(d.decode_efficiency_vs_parent < 1.0);
    assert!(d.prefill_efficiency_vs_parent > 0.8);
}

#[test]
fn replacement_plan_renders_for_multiple_splits() {
    for split in [2, 4, 8] {
        let plan = replacement_plan(split).expect("plan");
        assert_eq!(plan.matches("[Lite-GPU").count(), split as usize);
    }
}

#[test]
fn equal_silicon_serving_throughput_is_comparable() {
    // 2 H100 per instance vs 8 Lite per instance: same SMs, same HBM.
    // The Lite fleet pays collective overheads but must stay within 2x.
    let h = simulate(&ServingConfig::splitwise_h100_demo(), 42).expect("h100 sim");
    let l = simulate(&ServingConfig::splitwise_lite_demo(), 42).expect("lite sim");
    assert_eq!(h.arrived, l.arrived, "same workload");
    assert_eq!(h.completed, l.completed, "both drain fully");
    let ratio = l.throughput_tps / h.throughput_tps;
    assert!(ratio > 0.5 && ratio < 2.0, "throughput ratio = {ratio}");
}

#[test]
fn phase_split_controls_tail_tbt_under_load() {
    let mut mono = ServingConfig::monolithic_h100_demo();
    mono.workload.rate_per_s = 6.0;
    mono.horizon_s = 60.0;
    let mut split = ServingConfig::splitwise_h100_demo();
    split.workload.rate_per_s = 6.0;
    split.horizon_s = 60.0;
    let rm = simulate(&mono, 3).expect("mono");
    let rs = simulate(&split, 3).expect("split");
    assert!(
        rs.tbt_p99_s <= rm.tbt_p99_s * 1.05,
        "{} vs {}",
        rs.tbt_p99_s,
        rm.tbt_p99_s
    );
}

#[test]
fn experiments_run_all_renders_every_artifact() {
    let all = litegpu_repro::litegpu::experiments::run_all();
    let ids: Vec<&str> = all.iter().map(|e| e.id).collect();
    for required in [
        "table1",
        "fig1",
        "fig2",
        "fig3a",
        "fig3b",
        "claim_yield",
        "claim_shoreline",
        "claim_network",
        "claim_blast_radius",
        "claim_power",
        "claim_cost_perf",
        "sim_serving",
        "ablations",
    ] {
        assert!(ids.contains(&required), "missing experiment {required}");
    }
    for e in &all {
        assert!(!e.output.trim().is_empty(), "{} rendered empty", e.id);
        assert!(!e.output.contains("chart error"), "{} chart error", e.id);
    }
}

#[test]
fn custom_designs_compose_with_serving() {
    // Derive a +MemBW Lite and serve with it.
    let designer = ClusterDesigner {
        customization: LiteCustomization {
            name: "Lite+MemBW".into(),
            mem_bw_factor: 2.0,
            net_bw_factor: 1.0,
            clock_factor: 1.0,
        },
        ..ClusterDesigner::paper_default()
    };
    let design = designer.design().expect("design");
    let mut cfg = ServingConfig::splitwise_lite_demo();
    cfg.gpu = design.lite.clone();
    cfg.horizon_s = 30.0;
    cfg.scheduler = SchedulerKind::PhaseSplit {
        prefill_instances: 2,
    };
    let r = simulate(&cfg, 42).expect("sim");
    assert_eq!(r.arrived, r.completed);
    // Doubled memory bandwidth tightens decode steps versus plain Lite.
    let mut base = ServingConfig::splitwise_lite_demo();
    base.horizon_s = 30.0;
    let rb = simulate(&base, 42).expect("base sim");
    assert!(
        r.tbt_p50_s < rb.tbt_p50_s,
        "{} vs {}",
        r.tbt_p50_s,
        rb.tbt_p50_s
    );
}

//! Integration tests for clock-aware serving under DVFS: the
//! energy-vs-latency frontier the CI matrix gates on. Serving-time DVFS
//! must buy a double-digit energy-per-token reduction on the Lite demo
//! fleet without giving up interactive SLO attainment, stay byte-identical
//! at any shard/thread count, and compose with phase-split pools so
//! prefill and decode run at different operating points.

use litegpu_repro::cluster::power_mgmt::{operating_points, SLO_MIN_CLOCK};
use litegpu_repro::fleet::{run_sharded, FleetConfig, FleetReport, WorkloadSpec};

/// A day-sized Lite fleet on coarse ticks, demo workload at a rate that
/// keeps the autoscaler and the clock ladder both exercised.
fn day_sized(mut cfg: FleetConfig) -> FleetConfig {
    cfg.instances = 40;
    cfg.cell_size = 20;
    // Phase-split KV hand-offs need the demo tick resolution: a coarse
    // tick turns the link-backlog threshold into a per-tick admission
    // quantum.
    cfg.tick_s = 1.0;
    cfg.horizon_s = 8.0 * 3600.0;
    cfg.workload = WorkloadSpec::multi_tenant_demo(3.0);
    cfg.failure_acceleration = 200.0;
    if let Some(ctrl) = cfg.ctrl.as_mut() {
        ctrl.control_interval_s = 30.0;
    }
    cfg
}

fn with_dvfs(mut cfg: FleetConfig) -> FleetConfig {
    cfg.ctrl = cfg.ctrl.map(|c| c.with_dvfs());
    cfg
}

fn interactive_attainment(r: &FleetReport) -> (f64, f64) {
    r.interactive_attainment()
        .expect("demo workload has an interactive tenant")
}

#[test]
fn dvfs_cuts_energy_per_token_at_unchanged_interactive_attainment() {
    // The acceptance claim: ≥ 10% energy-per-token reduction on the Lite
    // fleet with interactive SLO attainment unchanged vs the
    // nominal-clock run.
    let nominal = run_sharded(&day_sized(FleetConfig::lite_ctrl_demo()), 42, 2, 2).unwrap();
    let dvfs = run_sharded(
        &with_dvfs(day_sized(FleetConfig::lite_ctrl_demo())),
        42,
        2,
        2,
    )
    .unwrap();
    assert!(nominal.dvfs.is_none());
    let d = dvfs.dvfs.as_ref().expect("dvfs section");
    assert!(
        dvfs.energy_per_token_j < 0.9 * nominal.energy_per_token_j,
        "≥10% energy/token reduction required: {} vs {}",
        dvfs.energy_per_token_j,
        nominal.energy_per_token_j
    );
    let (nt, nb) = interactive_attainment(&nominal);
    let (dt, db) = interactive_attainment(&dvfs);
    assert!(dt >= nt - 0.001, "TTFT attainment {dt} vs nominal {nt}");
    assert!(db >= nb - 0.01, "TBT attainment {db} vs nominal {nb}");
    // The fleet still serves the same demand.
    assert!(dvfs.completed as f64 > 0.995 * nominal.completed as f64);
    // And the accounting is self-consistent: saved = nominal − actual.
    assert_eq!(d.nominal_dyn_energy_j, d.dyn_energy_j + d.energy_saved_j);
    assert!(d.energy_saved_j > 0);
}

#[test]
fn dvfs_grid_matches_power_mgmt_operating_points() {
    let dvfs = run_sharded(
        &with_dvfs(day_sized(FleetConfig::lite_ctrl_demo())),
        7,
        2,
        2,
    )
    .unwrap();
    let d = dvfs.dvfs.as_ref().unwrap();
    assert_eq!(d.clock_points, operating_points());
    assert_eq!(d.clock_points[0], SLO_MIN_CLOCK);
    assert_eq!(*d.clock_points.last().unwrap(), 1.0);
    assert_eq!(d.clock_tick_share.len(), d.clock_points.len());
    let total: f64 = d.clock_tick_share.iter().sum();
    assert!((total - 1.0).abs() < 1e-9, "histogram sums to 1: {total}");
    assert!(d.mean_clock >= SLO_MIN_CLOCK && d.mean_clock <= 1.0);
}

#[test]
fn dvfs_serving_is_byte_identical_at_any_shard_and_thread_count() {
    // The determinism guarantee extends to clock-aware serving: clock
    // state lives inside the shard partition, step costs and energy are
    // integers per operating point.
    for split in [false, true] {
        let mut cfg = with_dvfs(day_sized(FleetConfig::lite_ctrl_demo()));
        if split {
            cfg = cfg.with_phase_split();
        }
        let base = run_sharded(&cfg, 11, 1, 1).unwrap();
        for (shards, threads) in [(2, 1), (2, 2), (2, 8)] {
            let r = run_sharded(&cfg, 11, shards, threads).unwrap();
            assert_eq!(
                r.to_json(),
                base.to_json(),
                "split={split} shards={shards} threads={threads}"
            );
        }
    }
}

#[test]
fn phase_split_pools_run_at_different_operating_points() {
    // Prefill is compute-bound (a down-clock inflates it ~1/clock), so
    // under real load the prefill pool holds a higher clock than the
    // memory-bound decode pool — §3's finer-grained clock control,
    // visible as a spread-out clock histogram rather than a single rung.
    let mut cfg = with_dvfs(day_sized(FleetConfig::lite_ctrl_demo())).with_phase_split();
    // The full diurnal cycle: quiet hours serve at the floor, the
    // afternoon peak forces pools up the ladder.
    cfg.horizon_s = 24.0 * 3600.0;
    let r = run_sharded(&cfg, 5, 2, 2).unwrap();
    let d = r.dvfs.as_ref().unwrap();
    assert!(r.kv_transfer.is_some());
    assert!(r.completed > 0);
    // Both the floor and at least one higher rung carry real time.
    let rungs_used = d.clock_tick_share.iter().filter(|&&s| s > 0.01).count();
    assert!(
        rungs_used >= 2,
        "pools must land on different points: {:?}",
        d.clock_tick_share
    );
    assert!(d.downclocked_share > 0.1);
    assert!(d.mean_clock < 1.0);
}

#[test]
fn h100_and_lite_both_gain_but_gating_composes_only_on_lite() {
    // DVFS composes with the §3 power story: both architectures gain
    // serving energy from down-clocking, but only the Lite fleet also
    // power-gates its parked capacity, so its idle energy stays lower.
    let h = run_sharded(
        &with_dvfs(day_sized(FleetConfig::h100_ctrl_demo())),
        42,
        2,
        2,
    )
    .unwrap();
    let l = run_sharded(
        &with_dvfs(day_sized(FleetConfig::lite_ctrl_demo())),
        42,
        2,
        2,
    )
    .unwrap();
    assert_eq!(h.controller, "autoscale+dvfs+gate(DvfsAll)+route");
    assert_eq!(l.controller, "autoscale+dvfs+gate(GateToEfficiency)+route");
    assert!(h.dvfs.as_ref().unwrap().energy_saved_j > 0);
    assert!(l.dvfs.as_ref().unwrap().energy_saved_j > 0);
    assert!(
        l.idle_energy_j < h.idle_energy_j,
        "gated Lite idle {} vs DVFS-only H100 idle {}",
        l.idle_energy_j,
        h.idle_energy_j
    );
}

//! Integration tests for the TCO frontier tentpole: the smoke sweep
//! covers every design axis, Pareto membership is exactly the
//! non-dominated set, per-point cost breakdowns conserve (parts sum to
//! the total), SLO-token accounting is bounded by the raw books, and
//! the whole report is byte-identical at any thread count.

use litegpu_repro::tco::{evaluate_sweep, pareto, smoke_grid, SweepBase, TcoModel, TcoReport};

fn base() -> SweepBase {
    SweepBase {
        equiv_instances: 8,
        rate_per_equiv: 2.0,
        hours: 0.25,
        accel: 2_000.0,
    }
}

fn report(threads: u32) -> TcoReport {
    let designs = smoke_grid();
    let model = TcoModel::paper_default();
    let points = evaluate_sweep(&designs, &base(), &model, 42, threads).expect("sweep");
    TcoReport::new(42, base(), model, points)
}

#[test]
fn smoke_sweep_covers_the_design_axes() {
    let r = report(2);
    assert!(
        r.points.len() >= 20,
        "the smoke grid must evaluate at least 20 designs, got {}",
        r.points.len()
    );
    let axis = |f: fn(&litegpu_repro::tco::DesignPoint) -> u32| {
        let mut v: Vec<u32> = r.points.iter().map(|p| f(&p.design)).collect();
        v.sort_unstable();
        v.dedup();
        v.len()
    };
    assert!(axis(|d| d.die_divisor) >= 2, "at least two die sizes");
    assert!(axis(|d| d.spare_units) >= 2, "at least two spare policies");
    assert!(axis(|d| d.split as u32) == 2, "mono and split serving");
    assert!(axis(|d| d.dvfs as u32) == 2, "DVFS off and on");
    // Every point was actually simulated and priced.
    for p in &r.points {
        assert!(p.generated_tokens > 0, "{}: no tokens generated", p.label);
        assert!(p.total_usd > 0.0, "{}: costs nothing", p.label);
        assert!(
            p.usd_per_mtoken.is_some(),
            "{}: priced points carry $/Mtoken",
            p.label
        );
    }
}

#[test]
fn frontier_is_exactly_the_non_dominated_set() {
    let r = report(2);
    assert!(!r.frontier.is_empty(), "a priced sweep has a frontier");
    let dominates = |a: usize, b: usize| -> bool {
        let (pa, pb) = (&r.points[a], &r.points[b]);
        let (ca, cb) = (pa.usd_per_mtoken.unwrap(), pb.usd_per_mtoken.unwrap());
        ca <= cb && pa.slo_share >= pb.slo_share && (ca < cb || pa.slo_share > pb.slo_share)
    };
    let on: Vec<usize> = r.frontier.iter().map(|&i| i as usize).collect();
    // No frontier point dominates another frontier point.
    for &i in &on {
        assert!(
            r.points[i].on_frontier,
            "frontier flag mirrors the index list"
        );
        for &j in &on {
            assert!(
                i == j || !dominates(i, j),
                "{} dominates fellow frontier point {}",
                r.points[i].label,
                r.points[j].label
            );
        }
    }
    // Every off-frontier point is dominated by some frontier point.
    for (i, p) in r.points.iter().enumerate() {
        if on.contains(&i) {
            continue;
        }
        assert!(!p.on_frontier);
        assert!(
            on.iter().any(|&j| dominates(j, i)),
            "{} is undominated yet off the frontier",
            p.label
        );
    }
    // The standalone pareto() helper agrees with the report.
    assert_eq!(pareto(&r.points), on, "pareto() must match TcoReport");
}

#[test]
fn breakdowns_conserve_and_books_are_bounded() {
    let r = report(2);
    for p in &r.points {
        let b = &p.breakdown;
        let parts =
            b.silicon_usd + b.spares_usd + b.network_usd + b.provisioning_usd + b.energy_usd;
        assert_eq!(
            p.total_usd.to_bits(),
            parts.to_bits(),
            "{}: breakdown parts must sum exactly to the total",
            p.label
        );
        assert_eq!(p.total_usd.to_bits(), b.total_usd().to_bits());
        for (name, part) in [
            ("silicon", b.silicon_usd),
            ("spares", b.spares_usd),
            ("network", b.network_usd),
            ("provisioning", b.provisioning_usd),
            ("energy", b.energy_usd),
        ] {
            assert!(
                part.is_finite() && part >= 0.0,
                "{}: {name} line must be a finite non-negative price",
                p.label
            );
        }
        // SLO-compliant tokens never exceed the raw generation books,
        // and the $/Mtoken quote re-derives from them.
        assert!(p.slo_tokens <= p.generated_tokens, "{}", p.label);
        assert!((0.0..=1.0).contains(&p.slo_share), "{}", p.label);
        let quote = p.usd_per_mtoken.unwrap();
        let expect = p.total_usd / (p.slo_tokens as f64 / 1e6);
        assert!(
            (quote - expect).abs() < 1e-12 * expect.abs().max(1.0),
            "{}: quote {quote} != {expect}",
            p.label
        );
    }
}

#[test]
fn report_is_byte_identical_at_any_thread_count() {
    let one = report(1);
    let many = report(8);
    assert_eq!(one.points.len(), many.points.len());
    assert_eq!(
        one.to_json(),
        many.to_json(),
        "TcoReport JSON must not depend on threads"
    );
    assert_eq!(one.frontier_csv(), many.frontier_csv());
    // The headline compares the cheapest of each die family.
    let h = one.headline.expect("both families priced");
    assert!(h.h100_usd_per_mtoken > 0.0 && h.lite_usd_per_mtoken > 0.0);
    assert!((h.lite_over_h100 - h.lite_usd_per_mtoken / h.h100_usd_per_mtoken).abs() < 1e-12);
}

//! Integration tests for chaos campaigns end to end: compiled schedules
//! keep the byte-identical-report guarantee at any shard and thread
//! count, instance downs are attributed to the right failure domain,
//! repair crews and drains are accounted, and at equal rack power the
//! Lite fleet's smaller blast radius shows up directly as higher
//! availability under the very same rack-outage campaign.

use litegpu_repro::chaos::{
    compile, outcome, run_campaign, run_campaign_full, Campaign, CampaignKind, ChaosReport,
    DomainPlan,
};
use litegpu_repro::fleet::{run, run_sharded, FleetConfig, TelemetryConfig, WorkloadSpec};

/// A small fleet of single-GPU Llama3-8B instances — the smallest model
/// in the catalog, so one instance maps to one GPU and the failure-domain
/// packing is set purely by each GPU's power draw.
fn single_gpu_fleet(
    gpu: litegpu_repro::specs::GpuSpec,
    instances: u32,
    cell_size: u32,
) -> FleetConfig {
    let failure = litegpu_repro::cluster::FailureModel::default_for(&gpu);
    let mut cfg = FleetConfig::h100_demo();
    cfg.gpu = gpu;
    cfg.failure = failure;
    cfg.arch = litegpu_repro::workload::models::llama3_8b();
    cfg.gpus_per_instance = 1;
    cfg.instances = instances;
    cfg.cell_size = cell_size;
    cfg.workload = WorkloadSpec::multi_tenant_demo(1.0);
    cfg.horizon_s = 1800.0;
    cfg.failure_acceleration = 10_000.0;
    cfg
}

fn h100_fleet() -> FleetConfig {
    single_gpu_fleet(litegpu_repro::specs::catalog::h100(), 96, 8)
}

fn lite_fleet() -> FleetConfig {
    // 4x the instances at 1/4 the compute and power: same total silicon,
    // same rack count under the shared 10 kW racks. The spare budget is
    // silicon-equal too (§3's "cheaper hot spares"): one H100 spare per
    // 8-instance cell buys four Lite spares per 32-instance cell.
    let mut cfg = single_gpu_fleet(litegpu_repro::specs::catalog::lite_base(), 384, 32);
    cfg.workload = WorkloadSpec::multi_tenant_demo(0.25);
    cfg.spares_per_cell = 4;
    cfg
}

fn campaign(kind: CampaignKind) -> Campaign {
    Campaign {
        kind,
        events: 3,
        duration_s: 300.0,
        intensity: 0.5,
    }
}

/// The core guarantee survives chaos: every campaign kind's report is
/// byte-identical at any shard/thread count.
#[test]
fn chaos_reports_byte_identical_across_shards_and_threads() {
    for kind in CampaignKind::ALL {
        let mut cfg = h100_fleet();
        cfg.horizon_s = 900.0;
        cfg.chaos = compile(&cfg, &DomainPlan::default(), &campaign(kind), 17).unwrap();
        let base = run_sharded(&cfg, 17, 1, 1).unwrap();
        let base_json = base.to_json();
        for (shards, threads) in [(4u32, 2u32), (8, 8), (12, 3)] {
            let r = run_sharded(&cfg, 17, shards, threads).unwrap();
            assert_eq!(r.to_json(), base_json, "{kind:?} at {shards}x{threads}");
        }
        let auto = run(&cfg, 17).unwrap();
        assert_eq!(auto.to_json(), base_json, "{kind:?} auto entry point");
    }
}

/// Rack outages land in the `rack` breakdown bucket, the crews get the
/// repair jobs, and the books conserve.
#[test]
fn rack_campaign_attributes_losses_and_dispatches_crews() {
    let cfg = h100_fleet();
    let r = run_campaign(
        &cfg,
        &DomainPlan::default(),
        &campaign(CampaignKind::RackOutages),
        5,
        4,
        2,
    )
    .unwrap();
    let b = &r.failure_breakdown;
    assert!(b.rack > 0, "rack losses must be attributed");
    assert_eq!(b.independent + b.rack + b.power, r.failures);
    let chaos = r
        .chaos
        .as_ref()
        .expect("campaign runs carry a chaos section");
    assert!(
        chaos.repairs_dispatched >= b.rack,
        "every down queues a repair"
    );
    assert!(chaos.mttr_s >= 0.0);
    assert_eq!(
        r.routed + r.rejected,
        r.arrived,
        "conservation holds under chaos"
    );
}

/// Partitioned cells shed their arrivals (counted separately) while the
/// arrival books still balance exactly.
#[test]
fn partition_campaign_sheds_and_conserves() {
    let cfg = h100_fleet();
    let r = run_campaign(
        &cfg,
        &DomainPlan::default(),
        &campaign(CampaignKind::NetworkPartitions),
        3,
        6,
        2,
    )
    .unwrap();
    let chaos = r.chaos.as_ref().unwrap();
    assert!(chaos.partition_shed > 0, "partitioned cells must shed");
    assert!(r.failure_breakdown.partition_events > 0);
    assert_eq!(r.routed + r.rejected, r.arrived);
}

/// A rolling drain touches every instance exactly once and restores the
/// waves whose windows close inside the horizon.
#[test]
fn drain_campaign_counts_waves_and_restores() {
    let cfg = h100_fleet();
    let r = run_campaign(
        &cfg,
        &DomainPlan::default(),
        &campaign(CampaignKind::RollingDrain),
        9,
        4,
        4,
    )
    .unwrap();
    let chaos = r.chaos.as_ref().unwrap();
    assert_eq!(
        chaos.drains,
        u64::from(cfg.instances),
        "one drain per instance"
    );
    assert!(chaos.drain_restores > 0);
    assert!(chaos.drain_restores <= chaos.drains);
    assert_eq!(r.failure_breakdown.rack + r.failure_breakdown.power, 0);
}

/// Thermal excursions are observed per affected cell and never create
/// instance-down failures.
#[test]
fn thermal_campaign_clamps_without_downs() {
    let cfg = h100_fleet();
    let r = run_campaign(
        &cfg,
        &DomainPlan::default(),
        &campaign(CampaignKind::ThermalExcursions),
        7,
        4,
        2,
    )
    .unwrap();
    assert!(r.failure_breakdown.thermal_events > 0);
    assert_eq!(r.failure_breakdown.rack + r.failure_breakdown.power, 0);
    assert_eq!(
        r.failure_breakdown.independent, r.failures,
        "thermal clamps are not failures"
    );
}

/// The recovery timeline the end-of-run table drops: with natural
/// failures off, the telemetry `up` series equals the full fleet at
/// every sample before the first outage window, and strictly dips at
/// every sample inside any outage window. An outage fires in the tick
/// containing its start, so a sample at time `t` reads "down" exactly
/// when `start_us < t <= end_us`.
#[test]
fn availability_series_dips_exactly_inside_outage_windows() {
    let plan = DomainPlan::default();
    let camp = campaign(CampaignKind::RackOutages);
    let mut cfg = h100_fleet();
    cfg.failure_acceleration = 0.0; // isolate the correlated losses
    cfg.telemetry = TelemetryConfig {
        series_dt_us: 60_000_000,
        ..TelemetryConfig::default()
    };
    let spec = compile(&cfg, &plan, &camp, 23).expect("compiled campaign");
    assert!(!spec.events.is_empty());
    let first_start = spec.events.iter().map(|e| e.start_us).min().unwrap();
    let fr = run_campaign_full(&cfg, &plan, &camp, 23, 4, 2).expect("campaign run");
    let series = fr.series.expect("series requested");
    let up = &series
        .get("up")
        .expect("series records the up gauge")
        .values;
    assert!(!up.is_empty());
    let fleet = u64::from(cfg.instances);
    let mut saw_pre_window_sample = false;
    let mut saw_in_window_sample = false;
    for (w, &v) in up.iter().enumerate() {
        let t = (w as u64 + 1) * series.dt_us();
        let inside = spec
            .events
            .iter()
            .any(|e| e.start_us < t && t <= e.end_us && !e.instances.is_empty());
        if t <= first_start {
            saw_pre_window_sample = true;
            assert_eq!(v, fleet, "window {w}: dip before any outage");
        }
        if inside {
            saw_in_window_sample = true;
            assert!(v < fleet, "window {w}: no dip inside an outage window");
        }
    }
    assert!(saw_pre_window_sample, "campaign must not start immediately");
    assert!(saw_in_window_sample, "samples must land inside the windows");
}

/// §3 blast radius, measured end to end: under the *same* rack-outage
/// campaign at the same rack power, the Lite fleet strands a smaller
/// capacity fraction per event and ends the horizon more available.
/// Natural failures are disabled so the comparison isolates the
/// correlated losses.
#[test]
fn lite_rides_out_rack_outages_better_than_h100() {
    let plan = DomainPlan::default();
    let camp = campaign(CampaignKind::RackOutages);
    let mut h100 = h100_fleet();
    let mut lite = lite_fleet();
    h100.failure_acceleration = 0.0;
    lite.failure_acceleration = 0.0;
    // Same total power -> same rack count -> the seeded campaign samples
    // the same rack indices for both fleets.
    let spec_h = compile(&h100, &plan, &camp, 23).unwrap();
    let spec_l = compile(&lite, &plan, &camp, 23).unwrap();
    assert_eq!(spec_h.events.len(), spec_l.events.len());
    for (eh, el) in spec_h.events.iter().zip(&spec_l.events) {
        let fh = eh.instances.len() as f64 / h100.instances as f64;
        let fl = el.instances.len() as f64 / lite.instances as f64;
        assert!(
            fl < fh,
            "lite must strand strictly less per rack: {fl} vs {fh}"
        );
    }
    let rh = run_campaign(&h100, &plan, &camp, 23, 4, 2).unwrap();
    let rl = run_campaign(&lite, &plan, &camp, 23, 4, 2).unwrap();
    assert!(
        rl.availability > rh.availability,
        "lite {} must beat h100 {}",
        rl.availability,
        rh.availability
    );
    // And the report plumbing carries the comparison.
    let rep = ChaosReport::new(&camp, 23, vec![outcome("h100", &rh), outcome("lite", &rl)]);
    assert_eq!(rep.outcomes.len(), 2);
    assert!(rep.to_json().contains("\"availability\""));
}

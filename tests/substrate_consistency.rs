//! Cross-crate consistency: quantities that two subsystems compute
//! independently must agree.

use litegpu_repro::fab::wafer::DieGeometry;
use litegpu_repro::net::collective::{allreduce_lower_bound, ring_allreduce_time};
use litegpu_repro::prelude::*;
use litegpu_repro::roofline::{capacity, EngineParams};
use litegpu_repro::specs::die::ShorelineBudget;
use litegpu_repro::workload::{kv, parallel, stage::PhaseWork, GqaPolicy, TensorParallel};

#[test]
fn lite_derivation_reproduces_table1_catalog() {
    let derivation = LiteDerivation::new(catalog::h100(), 4).unwrap();
    let derived = derivation.base("Lite").unwrap();
    let cat = catalog::lite_base();
    assert_eq!(derived.tflops, cat.tflops);
    assert_eq!(derived.sms, cat.sms);
    assert_eq!(derived.mem_bw_gbps, cat.mem_bw_gbps);
    assert_eq!(derived.net_bw_gbps, cat.net_bw_gbps);
    assert_eq!(derived.max_gpus, cat.max_gpus);
}

#[test]
fn catalog_dies_fit_their_shoreline_budgets() {
    for spec in catalog::table1() {
        let budget = ShorelineBudget::for_die(&spec.die);
        budget
            .check_allocation(spec.mem_bw_gbps, spec.net_bw_gbps)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    }
}

#[test]
fn equal_total_hbm_gives_equal_capacity_limited_batches() {
    // specs says 8 H100 and 32 Lite have equal HBM; capacity (roofline)
    // must then admit near-equal batches under full KV sharding.
    let p = EngineParams::paper_defaults();
    let arch = models::gpt3_175b();
    let bh = capacity::max_batch(&catalog::h100(), &arch, 8, 2000, &p);
    let bl = capacity::max_batch(&catalog::lite_base(), &arch, 32, 2000, &p);
    assert!(
        (bh as f64 - bl as f64).abs() / (bh as f64) < 0.02,
        "{bh} vs {bl}"
    );
}

#[test]
fn workload_kv_matches_capacity_accounting() {
    let p = EngineParams::paper_defaults();
    let arch = models::llama3_70b();
    // capacity's per-seq KV at TP=8 equals workload's bytes/token x ctx / 8.
    let per_seq = capacity::kv_bytes_per_seq_per_gpu(&arch, 8, 2000, &p);
    let expect = kv::bytes_per_token(&arch, Precision::Fp8) * 2000.0 / 8.0;
    assert!((per_seq - expect).abs() < 1.0);
}

#[test]
fn engine_collective_time_respects_net_lower_bound() {
    // The roofline's per-stage net time can never beat the collective
    // bandwidth lower bound.
    let p = EngineParams::paper_defaults();
    let arch = models::llama3_70b();
    let phase = PhaseWork::decode(&arch, Precision::Fp8, 128, 2000).unwrap();
    let sh = TensorParallel::new(8)
        .unwrap()
        .shard_with_policy(&arch, &phase, GqaPolicy::FullShard)
        .unwrap();
    let spec = catalog::lite_base();
    let t = litegpu_repro::roofline::engine::price_phase(&spec, &sh, OverlapMode::ComputeMem, &p)
        .unwrap();
    let payload = 128.0 * arch.d_model as f64; // One all-reduce, FP8.
    let bound = allreduce_lower_bound(8, payload, spec.net_bytes_per_s());
    let per_collective_net = t.net_s / (2.0 * arch.layers as f64);
    assert!(
        per_collective_net >= bound,
        "{per_collective_net} < {bound}"
    );
}

#[test]
fn ring_allreduce_time_consistent_between_crates() {
    // net's convenience wrapper equals the generic collective cost.
    let direct = ring_allreduce_time(16, 1e6, 100e9, 1e-6);
    let c = litegpu_repro::net::collective::collective_cost(
        litegpu_repro::net::collective::CollectiveOp::AllReduce,
        litegpu_repro::net::collective::CollectiveAlgorithm::Ring,
        16,
        1e6,
        100e9,
        1e-6,
    )
    .unwrap();
    assert!((direct - c.time_s).abs() < 1e-15);
}

#[test]
fn fab_die_and_spec_die_share_geometry() {
    // The H100 die in specs is the same object fab prices.
    let h100 = catalog::h100();
    assert!((h100.die.area_mm2() - 814.0).abs() < 1.0);
    let lite = catalog::lite_base();
    assert!((lite.die.area_mm2() - 814.0 / 4.0).abs() < 1.0);
    // And fab can rebuild it from scratch.
    let rebuilt = DieGeometry::with_aspect(814.0, 1.1).unwrap();
    assert!((rebuilt.perimeter_mm() - h100.die.perimeter_mm()).abs() < 1e-9);
}

#[test]
fn weight_sharding_consistent_between_workload_and_capacity() {
    let p = EngineParams::paper_defaults();
    let arch = models::llama3_405b();
    let a = capacity::weight_bytes_per_gpu(&arch, 32, &p);
    let b = parallel::weight_bytes_per_gpu(&arch, Precision::Fp8, 32);
    assert_eq!(a, b);
    assert!((a * 32.0 - arch.total_params()).abs() < 1.0);
}

#[test]
fn gqa_policies_agree_below_kv_head_count() {
    let arch = models::llama3_70b(); // 8 KV heads.
    for tp in 1..=8 {
        let head = parallel::kv_fraction_with_policy(&arch, tp, GqaPolicy::HeadShard);
        let full = parallel::kv_fraction_with_policy(&arch, tp, GqaPolicy::FullShard);
        assert_eq!(head, full, "tp={tp}");
    }
    // Above it they diverge by the replication factor.
    let head = parallel::kv_fraction_with_policy(&arch, 32, GqaPolicy::HeadShard);
    let full = parallel::kv_fraction_with_policy(&arch, 32, GqaPolicy::FullShard);
    assert!((head / full - 4.0).abs() < 1e-12);
}

#[test]
fn head_shard_policy_degrades_decode_for_gqa_models() {
    // Ablation: with the replication-prone HeadShard policy, Llama3-70B
    // decode on 32 Lite GPUs gets strictly worse than under FullShard.
    let mut p = EngineParams::paper_defaults();
    let arch = models::llama3_70b();
    let full = litegpu_repro::roofline::search::best_decode(&catalog::lite_base(), &arch, &p)
        .unwrap()
        .tokens_per_s_per_sm;
    p.gqa_policy = GqaPolicy::HeadShard;
    let head = litegpu_repro::roofline::search::best_decode(&catalog::lite_base(), &arch, &p)
        .unwrap()
        .tokens_per_s_per_sm;
    assert!(
        head < full,
        "head-shard {head} must trail full-shard {full}"
    );
}

//! Integration tests for the `litegpu-ctrl` control plane's *behavior*
//! at fleet scale: the §3 elasticity/energy claims (H100 vs Lite under
//! the diurnal demo trace) and routing recovery during failures.

use litegpu_repro::fleet::{run, spares_for_target, FleetConfig};

/// Shrinks a demo config to a 40-instance fleet on 5 s ticks so a full
/// simulated day stays fast in tests.
fn day_sized(mut cfg: FleetConfig) -> FleetConfig {
    cfg.instances = 40;
    cfg.cell_size = 20;
    cfg.tick_s = 5.0;
    cfg.horizon_s = 24.0 * 3600.0;
    if let Some(ctrl) = cfg.ctrl.as_mut() {
        ctrl.control_interval_s = 30.0;
    }
    cfg
}

#[test]
fn lite_gating_beats_h100_dvfs_on_idle_energy_over_a_diurnal_day() {
    // The acceptance claim: under the diurnal demo trace, the Lite fleet
    // (parked instances power-gate off) shows measurably lower idle
    // energy than the H100 fleet (parked instances can only down-clock
    // to their idle floor — §3's monolithic-GPU limitation).
    let h = run(&day_sized(FleetConfig::h100_ctrl_demo()), 42).unwrap();
    let l = run(&day_sized(FleetConfig::lite_ctrl_demo()), 42).unwrap();
    assert_eq!(h.controller, "autoscale+gate(DvfsAll)+route");
    assert_eq!(l.controller, "autoscale+gate(GateToEfficiency)+route");
    // Both fleets breathe with the diurnal curve...
    for r in [&h, &l] {
        assert!(r.scale_ups > 0, "{}: no scale-ups", r.gpu);
        assert!(r.scale_downs > 0, "{}: no parks", r.gpu);
        assert!(r.avg_live_instances < 40.0 * 0.9, "{}: never parked", r.gpu);
        assert!(r.energy_j > 0 && r.idle_energy_j > 0);
    }
    // ...but only the gated fleet stops paying for parked capacity.
    assert!(
        (l.idle_energy_j as f64) < 0.5 * h.idle_energy_j as f64,
        "lite idle {} J vs h100 idle {} J",
        l.idle_energy_j,
        h.idle_energy_j
    );
    assert!(l.energy_j < h.energy_j);
}

#[test]
fn autoscaled_fleet_saves_energy_and_holds_slos_against_fixed_fleet() {
    let fixed = run(&day_sized(FleetConfig::lite_demo()), 7).unwrap();
    let scaled = run(&day_sized(FleetConfig::lite_ctrl_demo()), 7).unwrap();
    assert!(scaled.avg_live_instances < fixed.avg_live_instances);
    assert!(
        scaled.energy_j < fixed.energy_j,
        "autoscaling should save energy: {} vs {}",
        scaled.energy_j,
        fixed.energy_j
    );
    // Elasticity must not wreck the service: nearly everything completes
    // and TTFT attainment stays close to the fixed fleet's.
    assert!(scaled.completed as f64 > 0.99 * fixed.completed as f64);
    assert!(scaled.ttft_attainment > fixed.ttft_attainment - 0.05);
}

#[test]
fn router_recovers_traffic_stranded_by_failures() {
    // Router only (no autoscaler), under heavy failure injection: the
    // uncontrolled fleet strands arrivals on down instances, the routed
    // fleet steers them to live ones.
    let mut legacy = FleetConfig::lite_demo();
    legacy.instances = 40;
    legacy.cell_size = 10;
    legacy.horizon_s = 2.0 * 3600.0;
    legacy.failure_acceleration = 300_000.0;
    let mut routed = legacy.clone();
    routed.ctrl = Some(
        litegpu_repro::ctrl::CtrlConfig::builder()
            .route(litegpu_repro::ctrl::RouterConfig::default())
            .build(),
    );
    let a = run(&legacy, 3).unwrap();
    let b = run(&routed, 3).unwrap();
    assert_eq!(b.controller, "route");
    assert!(a.failures > 10 && b.failures > 10);
    // Routing turns stranded-queue waits into served requests: more
    // completions and a far better tail latency.
    assert!(
        b.completed > a.completed,
        "routed {} vs stranded {}",
        b.completed,
        a.completed
    );
    assert!(
        b.e2e_p99_s < a.e2e_p99_s,
        "routed p99 {} vs stranded p99 {}",
        b.e2e_p99_s,
        a.e2e_p99_s
    );
}

#[test]
fn fleet_spare_search_confirms_cheaper_lite_pools() {
    // The fleet-level spare-provisioning sweep (ROADMAP item): both
    // fleets need similar spare *counts*, but the Lite pool costs a
    // quarter of the fleet fraction.
    let mut h = FleetConfig::h100_demo();
    let mut l = FleetConfig::lite_demo();
    for cfg in [&mut h, &mut l] {
        cfg.instances = 24;
        cfg.cell_size = 8;
        cfg.horizon_s = 1800.0;
        cfg.failure_acceleration = 30_000.0;
    }
    let fh = spares_for_target(&h, 0.97, 8, 5).unwrap();
    let fl = spares_for_target(&l, 0.97, 8, 5).unwrap();
    assert!(fh.report.availability >= 0.97);
    assert!(fl.report.availability >= 0.97);
    if fh.spares_per_cell == fl.spares_per_cell && fh.spares_per_cell > 0 {
        assert!(
            (fh.report.spare_overhead / fl.report.spare_overhead - 4.0).abs() < 1e-9,
            "same spare units should cost 4x less fleet fraction on Lite"
        );
    }
}

//! Integration tests for the telemetry tentpole: exported traces are
//! well-formed Chrome trace-event JSON (Perfetto-compatible), request
//! spans balance, series counters reconcile exactly with the end-of-run
//! report, per-cell series sum back to fleet series, and the engine
//! self-profile is populated.

use litegpu_repro::chaos::{compile, Campaign, CampaignKind, DomainPlan};
use litegpu_repro::fleet::{
    run_sharded_full, FleetConfig, ServingMode, TelemetryConfig, WorkloadSpec,
};
use litegpu_repro::telemetry::profile::{PHASE_MERGE, PHASE_SERVE};
use litegpu_repro::telemetry::{render_chrome_trace, validate_json, Ph, TraceEvent};

/// A small controlled fleet under a rack-outage campaign: exercises
/// request spans, control-plane commands, chaos events and repairs in
/// one trace.
fn ctrl_chaos_cfg() -> FleetConfig {
    let mut cfg = FleetConfig::lite_ctrl_demo();
    cfg.instances = 64;
    cfg.cell_size = 8;
    cfg.horizon_s = 1800.0;
    cfg.failure_acceleration = 20_000.0;
    cfg.workload = WorkloadSpec::multi_tenant_demo(1.5);
    let camp = Campaign {
        kind: CampaignKind::RackOutages,
        events: 2,
        duration_s: 300.0,
        intensity: 0.5,
    };
    cfg.chaos = compile(&cfg, &DomainPlan::default(), &camp, 3).expect("compiled campaign");
    cfg.telemetry = TelemetryConfig {
        series_dt_us: 60_000_000,
        per_cell_series: true,
        trace_every: 2,
        profile: true,
    };
    cfg
}

/// A phase-split fleet, for the KV-transfer async legs.
fn split_cfg() -> FleetConfig {
    let mut cfg = FleetConfig::lite_demo();
    cfg.instances = 64;
    cfg.cell_size = 8;
    cfg.horizon_s = 1800.0;
    cfg.failure_acceleration = 0.0;
    cfg.serving = ServingMode::split_demo(&cfg.gpu, cfg.gpus_per_instance);
    cfg.telemetry = TelemetryConfig {
        trace_every: 2,
        ..TelemetryConfig::default()
    };
    cfg
}

#[test]
fn chaos_trace_is_valid_chrome_trace_json_with_all_layers() {
    let cfg = ctrl_chaos_cfg();
    let mut fr = run_sharded_full(&cfg, 5, 4, 2).expect("run");
    let events = fr.trace.as_mut().expect("trace requested");
    assert!(!events.is_empty());
    let json = render_chrome_trace(events);
    validate_json(&json).expect("trace must be well-formed JSON");
    assert!(json.starts_with("{\"traceEvents\":["));
    // All three sources land in one trace: request spans, control
    // commands, chaos events (plus the repair queue).
    let names: Vec<&str> = events.iter().map(|e| e.name).collect();
    for want in ["queue", "prefill", "decode", "rack_outage", "repair"] {
        assert!(names.contains(&want), "trace must carry {want:?} events");
    }
    assert!(
        events.iter().any(|e| e.cat == "ctrl"),
        "control-plane commands must be traced"
    );
    // Control commands carry the tick in args and name the real command
    // set (activate/park/set_* — lifecycle of the autoscaler + gating).
    let ctrl_names: std::collections::BTreeSet<&str> = events
        .iter()
        .filter(|e| e.cat == "ctrl")
        .map(|e| e.name)
        .collect();
    assert!(
        ctrl_names.iter().all(|n| [
            "activate",
            "park",
            "set_warm",
            "set_cold",
            "set_weights",
            "set_admission",
            "set_phase",
            "set_clock"
        ]
        .contains(n)),
        "unexpected control command names: {ctrl_names:?}"
    );
}

/// Async request legs balance: every `decode`/`kv_transfer` async-end
/// has exactly one matching async-begin with an earlier-or-equal
/// timestamp, keyed by the RNG-free span id.
#[test]
fn request_span_async_legs_balance() {
    for (label, cfg, seed) in [
        ("ctrl+chaos", ctrl_chaos_cfg(), 5),
        ("split", split_cfg(), 11),
    ] {
        let fr = run_sharded_full(&cfg, seed, 4, 2).expect("run");
        let events: Vec<TraceEvent> = fr.trace.expect("trace requested");
        for name in ["decode", "kv_transfer"] {
            let begins: std::collections::BTreeMap<u64, u64> = events
                .iter()
                .filter(|e| e.name == name && e.ph == Ph::AsyncBegin)
                .map(|e| (e.id, e.ts_us))
                .collect();
            let mut ends = 0usize;
            for e in events
                .iter()
                .filter(|e| e.name == name && e.ph == Ph::AsyncEnd)
            {
                let b = begins
                    .get(&e.id)
                    .unwrap_or_else(|| panic!("{label}: {name} end id {:#x} has no begin", e.id));
                assert!(
                    *b <= e.ts_us,
                    "{label}: {name} span {:#x} ends before it begins",
                    e.id
                );
                ends += 1;
            }
            if name == "decode" {
                assert!(ends > 0, "{label}: some decode spans must complete");
            }
        }
        if label == "split" {
            assert!(
                events.iter().any(|e| e.name == "kv_transfer"),
                "split runs must trace KV transfers"
            );
        }
    }
}

/// Series counters are exact: over a horizon that tiles the sample
/// grid, per-window deltas sum back to the report's totals — fleet-wide,
/// per tenant, and per cell.
#[test]
fn series_counters_reconcile_with_the_report() {
    let cfg = ctrl_chaos_cfg();
    let fr = run_sharded_full(&cfg, 5, 4, 2).expect("run");
    let series = fr.series.expect("series requested");
    let r = &fr.report;
    let sum = |name: &str| -> u64 {
        series
            .get(name)
            .unwrap_or_else(|| panic!("series must record {name}"))
            .values
            .iter()
            .sum()
    };
    assert_eq!(sum("arrived"), r.arrived);
    assert_eq!(sum("completed"), r.completed);
    assert_eq!(sum("rejected"), r.rejected);
    assert_eq!(sum("admission_shed"), r.admission_shed);
    assert_eq!(sum("failures"), r.failures);
    // The report floors µJ → J; the series keeps the exact µJ deltas.
    assert_eq!(sum("energy_uj") / 1_000_000, r.energy_j);
    for (t, tenant) in r.per_tenant.iter().enumerate() {
        assert_eq!(
            sum(&format!("tenant{t}/arrived")),
            tenant.arrived,
            "{}",
            tenant.name
        );
        assert_eq!(
            sum(&format!("tenant{t}/completed")),
            tenant.completed,
            "{}",
            tenant.name
        );
    }
    // Per-cell series tile the fleet exactly.
    let cells = cfg.num_cells();
    for metric in ["arrived", "completed"] {
        let total: u64 = (0..cells).map(|c| sum(&format!("cell{c}/{metric}"))).sum();
        assert_eq!(total, sum(metric), "cells must tile fleet {metric}");
    }
}

/// The report's derived `energy_per_token_j` — the number the TCO sweep
/// prices — reconciles with the exact integer-µJ series counter within
/// the report's µJ → J flooring: re-deriving it from the series gives
/// the identical f64, and multiplying back recovers the series total to
/// within one joule of rounding.
#[test]
fn energy_per_token_reconciles_with_series_counter() {
    let cfg = ctrl_chaos_cfg();
    let fr = run_sharded_full(&cfg, 5, 4, 2).expect("run");
    let series = fr.series.expect("series requested");
    let r = &fr.report;
    assert!(r.generated_tokens > 0, "the demo workload generates tokens");
    let uj: u64 = series
        .get("energy_uj")
        .expect("series must record energy_uj")
        .values
        .iter()
        .sum();
    // Same flooring as the report: integer µJ → integer J, then divide.
    let rederived = (uj / 1_000_000) as f64 / r.generated_tokens as f64;
    assert_eq!(
        r.energy_per_token_j.to_bits(),
        rederived.to_bits(),
        "energy_per_token_j must be exactly the floored series energy per token"
    );
    // And the flooring is the only slack: scaling back up lands within
    // one joule of the exact µJ books.
    let back_j = r.energy_per_token_j * r.generated_tokens as f64;
    let exact_j = uj as f64 / 1e6;
    assert!(
        (back_j - exact_j).abs() <= 1.0,
        "derived energy {back_j} J strays more than rounding from the {exact_j} J series total"
    );
}

/// The self-profile is populated (serve phase and merge both timed) and
/// renders valid JSON for `BENCH_fleet.json`.
#[test]
fn engine_profile_times_the_phases() {
    let cfg = ctrl_chaos_cfg();
    let fr = run_sharded_full(&cfg, 5, 2, 2).expect("run");
    let p = fr.profile.expect("profile requested");
    assert!(p.total_ns() > 0);
    assert!(p.calls[PHASE_SERVE] > 0, "serve phase must be timed");
    assert!(p.calls[PHASE_MERGE] > 0, "shard merge must be timed");
    validate_json(&p.to_json()).expect("profile JSON must be well-formed");
    assert!(p.summary().starts_with("profile: "));
}

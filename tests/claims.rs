//! Integration tests for the paper's §2/§3 quantitative claims (the
//! C1–C5 rows of the experiment index in DESIGN.md).

use litegpu_repro::cluster::failure::{ClusterReliability, FailureModel};
use litegpu_repro::cluster::node::ClusterSpec;
use litegpu_repro::cluster::power_mgmt::{self, Policy};
use litegpu_repro::fab::cost::h100_vs_lite_comparison;
use litegpu_repro::fab::yield_model::YieldModel;
use litegpu_repro::net::switching::{CircuitSwitch, PacketSwitch, SwitchComparison};
use litegpu_repro::specs::catalog;
use litegpu_repro::specs::die::split_bandwidth_to_compute_gain;

#[test]
fn c1_yield_gain_approx_1_8x() {
    // §2: "the yield rate can be increased by 1.8x when a H100-like
    // compute die area is reduced by 1/4th".
    let gain = YieldModel::Poisson.split_yield_gain(814.0, 0.1, 4);
    assert!((gain - 1.8).abs() < 0.05, "gain = {gain}");
}

#[test]
fn c1_manufacturing_cost_almost_halves() {
    // §2: "corresponding to almost 50% reduction in manufacturing cost".
    let cmp = h100_vs_lite_comparison().expect("cost model");
    assert!(
        cmp.silicon_saving > 0.40 && cmp.silicon_saving < 0.60,
        "saving = {}",
        cmp.silicon_saving
    );
    // Packaging differences push the packaged-GPU saving higher still.
    assert!(cmp.package_saving > cmp.silicon_saving * 0.5);
}

#[test]
fn c2_shoreline_doubles_at_quarter_area() {
    // §2: "reducing the die area to 1/4th doubles the perimeter exposed
    // to the four dies, yielding a cluster with 2x the
    // bandwidth-to-compute ratio".
    assert!((split_bandwidth_to_compute_gain(4) - 2.0).abs() < 1e-12);
    let h100 = catalog::h100();
    let lite4_perimeter = 4.0 * h100.die.shrink(4).unwrap().perimeter_mm();
    assert!((lite4_perimeter / h100.die.perimeter_mm() - 2.0).abs() < 1e-9);
    // And Table 1's +MemBW variant exactly spends that headroom.
    let ratio = catalog::lite_mem_bw().mem_bw_per_flop() / h100.mem_bw_per_flop();
    assert!((ratio - 2.0).abs() < 0.01, "ratio = {ratio}");
}

#[test]
fn c3_circuit_switching_beats_packet_on_all_three_axes() {
    // §3: "(i) more than 50% better energy efficiency, (ii) lower latency,
    // and (iii) more ports at high bandwidth".
    let cmp = SwitchComparison::compare(
        &CircuitSwitch::sirius_class(),
        &PacketSwitch::tomahawk_class(),
    );
    assert!(
        cmp.energy_saving > 0.5,
        "energy saving = {}",
        cmp.energy_saving
    );
    assert!(cmp.latency_advantage_s > 0.0);
    assert!(cmp.radix_ratio > 1.0);
    assert!(cmp.paper_claims_hold());
}

#[test]
fn c4_blast_radius_shrinks_4x_and_availability_improves() {
    // §3: "Reducing the size of the GPU naturally reduces the blast
    // radius ... leading to higher available FLOPS".
    let fm = FailureModel::default_for(&catalog::h100());
    let h = ClusterReliability::new(catalog::h100(), 8, fm).unwrap();
    let l = ClusterReliability::new(catalog::lite_base(), 32, fm).unwrap();
    assert!((h.blast_radius_fraction() / l.blast_radius_fraction() - 4.0).abs() < 1e-9);
    assert!(l.expected_available_flops_fraction() > h.expected_available_flops_fraction());
}

#[test]
fn c4_spare_units_cost_4x_less_fleet_fraction() {
    use litegpu_repro::cluster::failure::monte_carlo_availability;
    let fm = FailureModel::default_for(&catalog::h100());
    let mh = monte_carlo_availability(&catalog::h100(), &fm, 4, 8, 1, 50.0, 9).unwrap();
    let ml = monte_carlo_availability(&catalog::lite_base(), &fm, 4, 32, 1, 50.0, 9).unwrap();
    assert!((mh.spare_overhead / ml.spare_overhead - 4.0).abs() < 1e-9);
}

#[test]
fn c5_gating_saves_energy_and_lite_gates_finer() {
    // §3: "In a Lite-GPU cluster, we can control down-clocking at finer
    // granularity to achieve better power efficiency."
    let trace = power_mgmt::diurnal_trace();
    let h = ClusterSpec::h100_node();
    let l = ClusterSpec::lite_node();
    let saving_lite = power_mgmt::gating_saving(&l, &trace).unwrap();
    assert!(saving_lite > 0.05, "saving = {saving_lite}");
    let eh = power_mgmt::trace_energy_j(&h, Policy::GateToEfficiency, &trace).unwrap();
    let el = power_mgmt::trace_energy_j(&l, Policy::GateToEfficiency, &trace).unwrap();
    assert!(el <= eh * 1.001, "lite {el} > h100 {eh}");
}

#[test]
fn c5_overclock_headroom_within_air_cooling() {
    // §3: "we can over-clock Lite-GPUs ... since smaller die areas allow
    // for easier cooling and higher clock frequencies."
    let assess = litegpu_repro::specs::cooling::assess(&catalog::lite_base()).unwrap();
    assert!(assess.max_sustained_clock >= 1.10);
    let h100 = litegpu_repro::specs::cooling::assess(&catalog::h100()).unwrap();
    assert!(assess.max_sustained_clock > h100.max_sustained_clock);
}

#[test]
fn c6_lite_mem_bw_wins_on_perf_per_dollar() {
    // §4: "In terms of performance per $-cost ... even matching
    // performance of today's clusters may lead to sufficient improvement
    // in performance per cost."
    let exp = litegpu_repro::litegpu::experiments::claim_cost_perf(
        &litegpu_repro::roofline::EngineParams::paper_defaults(),
    );
    assert!(
        exp.output.contains("per dollar"),
        "unexpected output: {}",
        exp.output
    );
    assert!(!exp.output.contains("comparison incomplete"));
}

//! Integration tests for fleet-scale phase-split serving (Splitwise
//! prefill/decode pools + per-cell KV links): the KV-transfer
//! conservation law, byte-identical reports under resharding, the
//! fleet-scale port of the sim crate's
//! `phase_split_isolates_tbt_from_prefill`, and back-pressure landing in
//! TTFT while decode books stay isolated.

use litegpu_repro::fleet::{run, run_sharded, FleetConfig, KvLink, ServingMode, WorkloadSpec};

/// A 64-instance fleet driven hard enough that monolithic serving
/// interleaves prefills into essentially every tick.
fn split_cfg() -> FleetConfig {
    let mut cfg = FleetConfig::h100_demo().with_phase_split();
    cfg.instances = 64;
    cfg.cell_size = 8;
    cfg.horizon_s = 1800.0;
    cfg.failure_acceleration = 0.0;
    cfg.workload.rate_per_instance_s = 3.0;
    cfg
}

/// The controlled variant: phase-aware autoscaler + router + gating over
/// the 3-tenant mixed-priority workload, with failure injection.
fn ctrl_split_cfg() -> FleetConfig {
    let mut cfg = FleetConfig::lite_ctrl_demo().with_phase_split();
    cfg.instances = 64;
    cfg.cell_size = 8;
    cfg.horizon_s = 1800.0;
    cfg.failure_acceleration = 50_000.0;
    cfg.workload = WorkloadSpec::multi_tenant_demo(3.0);
    cfg
}

/// Conservation law for KV-transfer accounting: every byte enqueued on a
/// cell link is either delivered into the decode pool or still in flight
/// when the horizon ends — exactly, in integers — and the request-level
/// routing identities keep holding alongside.
#[test]
fn kv_bytes_are_conserved() {
    for (label, cfg, seed) in [
        ("uncontrolled", split_cfg(), 13u64),
        ("controlled", ctrl_split_cfg(), 13),
        (
            "failing",
            {
                let mut c = split_cfg();
                c.failure_acceleration = 100_000.0;
                c
            },
            5,
        ),
    ] {
        let r = run(&cfg, seed).unwrap();
        let kv = r.kv_transfer.as_ref().expect("split run has kv section");
        assert!(kv.transfers > 0, "{label}: no transfers");
        assert_eq!(
            kv.bytes_queued,
            kv.bytes_delivered + kv.bytes_inflight_at_end,
            "{label}: queued must equal drained + in-flight"
        );
        assert_eq!(r.routed + r.rejected, r.arrived, "{label}");
        for t in &r.per_tenant {
            assert_eq!(
                t.routed + t.rejected + t.shed,
                t.arrived,
                "{label}/{}",
                t.name
            );
        }
    }
}

/// Transfer-delay determinism under resharding: the phase-split report —
/// including the KV histograms' percentiles — is byte-identical at any
/// shard and thread count, with and without the control plane.
#[test]
fn phase_split_reports_byte_identical_across_shards_and_threads() {
    for (label, cfg) in [("plain", split_cfg()), ("controlled", ctrl_split_cfg())] {
        let base = run_sharded(&cfg, 42, 1, 1).unwrap();
        let kv = base.kv_transfer.as_ref().expect("kv section");
        assert!(kv.transfers > 0, "{label}: kv path must be exercised");
        assert!(kv.delay_p99_s > 0.0, "{label}: delay books must be live");
        let base_json = base.to_json();
        for (shards, threads) in [(4u32, 1u32), (8, 2), (8, 8)] {
            let r = run_sharded(&cfg, 42, shards, threads).unwrap();
            assert_eq!(
                r.to_json(),
                base_json,
                "{label}: shards={shards} threads={threads}"
            );
        }
        let auto = run(&cfg, 42).unwrap();
        assert_eq!(auto.to_json(), base_json, "{label}: auto-parallel run");
    }
}

/// The fleet-scale port of the sim crate's
/// `phase_split_isolates_tbt_from_prefill`: monolithic serving
/// interleaves 100 ms+ prefills into the decode stream, inflating p99
/// TBT; phase splitting keeps the decode pool's token gaps tight, at a
/// TTFT premium (queueing + KV transfer).
#[test]
fn phase_split_isolates_tbt_from_prefill_at_fleet_scale() {
    let split = run(&split_cfg(), 3).unwrap();
    let mut mono_cfg = split_cfg();
    mono_cfg.serving = ServingMode::Monolithic;
    let mono = run(&mono_cfg, 3).unwrap();
    assert!(
        split.tbt_p99_s <= mono.tbt_p99_s * 1.05,
        "split p99 {} vs mono p99 {}",
        split.tbt_p99_s,
        mono.tbt_p99_s
    );
    // At this load the isolation is not marginal: monolithic p99 token
    // gaps carry whole prefill launches.
    assert!(
        split.tbt_p99_s < mono.tbt_p99_s * 0.5,
        "split p99 {} vs mono p99 {}",
        split.tbt_p99_s,
        mono.tbt_p99_s
    );
    // Equal instance count, near-equal volume: splitting reshuffles
    // work, it does not shed it.
    assert_eq!(split.arrived, mono.arrived);
    assert!(split.completed as f64 > 0.99 * mono.completed as f64);
}

/// A starved KV link back-pressures the prefill pool: prompts queue, the
/// delay lands in TTFT, and decode token gaps stay untouched.
#[test]
fn starved_kv_link_backpressures_ttft_only() {
    let generous = run(&split_cfg(), 9).unwrap();
    let mut cfg = split_cfg();
    cfg.serving = ServingMode::PhaseSplit {
        prefill_fraction: 0.25,
        kv_link: KvLink {
            bandwidth_gbps: 2.0,
            max_backlog_s: 0.25,
        },
    };
    let starved = run(&cfg, 9).unwrap();
    let kv = starved.kv_transfer.as_ref().unwrap();
    assert!(kv.backpressure_stalls > 0);
    assert!(
        starved.ttft_p99_s > 10.0 * generous.ttft_p99_s,
        "starved TTFT {} vs generous {}",
        starved.ttft_p99_s,
        generous.ttft_p99_s
    );
    assert!(starved.tbt_p99_s < generous.tbt_p99_s * 1.5);
}

/// The phase-aware control plane rebalances pools and keeps the
/// interactive tenant's books honest under the mixed-priority workload.
#[test]
fn controlled_split_fleet_stays_phase_aware() {
    let r = run(&ctrl_split_cfg(), 21).unwrap();
    assert_eq!(r.controller, "autoscale+gate(GateToEfficiency)+route");
    assert!(r.serving.starts_with("phase-split"));
    let kv = r.kv_transfer.as_ref().unwrap();
    assert!(kv.prefill_pool_mean > 0.0, "prefill pool must stay live");
    assert!(kv.decode_pool_mean > 0.0, "decode pool must stay live");
    assert!(
        kv.phase_rebalances > 0,
        "failures + diurnal demand must exercise SetPhase"
    );
    assert_eq!(r.per_tenant.len(), 3);
    for t in &r.per_tenant {
        assert!(t.completed > 0, "{}: nothing served", t.name);
    }
}

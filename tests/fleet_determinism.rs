//! Integration tests for the fleet simulator's determinism guarantee:
//! same seed ⇒ byte-identical `FleetReport` JSON at any shard count and
//! any thread count — with and without the `litegpu-ctrl` control plane
//! (autoscaler + power gating + cell router + admission control), for
//! single-tenant and mixed-priority multi-tenant workloads — plus
//! conservation laws for the priority-aware largest-remainder routing.

use litegpu_repro::chaos::{compile, Campaign, CampaignKind, DomainPlan};
use litegpu_repro::ctrl::{BalancerConfig, CtrlConfig, PriorityClass};
use litegpu_repro::fleet::{
    run, run_sharded, run_sharded_full, FleetConfig, LengthDist, ServingMode, TelemetryConfig,
    Tenant, TrafficPattern, WorkloadSpec,
};
use litegpu_repro::telemetry::render_chrome_trace;

fn test_cfg() -> FleetConfig {
    let mut cfg = FleetConfig::lite_demo();
    cfg.instances = 64;
    cfg.cell_size = 8;
    cfg.horizon_s = 1800.0;
    cfg.failure_acceleration = 50_000.0;
    cfg
}

/// A 3-tenant mixed-priority spec over distinct patterns: an interactive
/// tenant riding a quiet→busy ramp, a flat batch tenant with long
/// outputs, and a best-effort scavenger that admission control may shed
/// at the ramp.
fn mixed_workload(rate: f64) -> WorkloadSpec {
    let ramp = TrafficPattern::trace(vec![(0.0, 0.2), (600.0, 0.2), (900.0, 1.6), (1800.0, 1.6)])
        .expect("valid trace");
    let mut chat = Tenant::new("chat", ramp.clone(), 5.0, PriorityClass::Interactive);
    chat.output_len = LengthDist::geometric(300);
    let mut batch = Tenant::new("batch", TrafficPattern::Constant, 3.0, PriorityClass::Batch);
    batch.output_len = LengthDist::geometric(900);
    batch.ttft_slo_s = Some(30.0);
    let mut scavenge = Tenant::new("scavenge", ramp, 2.0, PriorityClass::BestEffort);
    scavenge.output_len = LengthDist::geometric(200);
    scavenge.ttft_slo_s = Some(60.0);
    WorkloadSpec {
        rate_per_instance_s: rate,
        tenants: vec![chat, batch, scavenge],
    }
}

/// A fully-controlled fleet serving the 3-tenant mixed-priority spec
/// over a quiet→busy traffic ramp, so both autoscaler directions (parks
/// at the quiet start, activations at the ramp) and the priority-aware
/// routing are exercised.
fn ctrl_cfg() -> FleetConfig {
    let mut cfg = FleetConfig::lite_ctrl_demo();
    cfg.instances = 64;
    cfg.cell_size = 8;
    cfg.horizon_s = 1800.0;
    cfg.failure_acceleration = 50_000.0;
    cfg.workload = mixed_workload(1.5);
    cfg
}

#[test]
fn byte_identical_json_across_1_4_8_shards() {
    let cfg = test_cfg();
    let base = run_sharded(&cfg, 42, 1, 1).expect("1-shard run");
    let base_json = base.to_json();
    assert!(base.failures > 0, "test should exercise failure paths");
    assert!(base.completed > 0);
    for shards in [4u32, 8] {
        let r = run_sharded(&cfg, 42, shards, 1).expect("sharded run");
        assert_eq!(r.to_json(), base_json, "shards = {shards}");
    }
}

#[test]
fn byte_identical_json_across_thread_counts() {
    let cfg = test_cfg();
    let base = run_sharded(&cfg, 7, 8, 1).expect("single-threaded");
    for threads in [2u32, 4, 8] {
        let r = run_sharded(&cfg, 7, 8, threads).expect("multi-threaded");
        assert_eq!(r.to_json(), base.to_json(), "threads = {threads}");
    }
    // And the auto-parallel entry point agrees too.
    let auto = run(&cfg, 7).expect("auto run");
    assert_eq!(auto.to_json(), base.to_json());
}

#[test]
fn controlled_fleet_byte_identical_across_1_4_8_shards() {
    let cfg = ctrl_cfg();
    let base = run_sharded(&cfg, 42, 1, 1).expect("1-shard controlled run");
    let base_json = base.to_json();
    // The run must actually exercise the control plane...
    assert_eq!(base.controller, "autoscale+gate(GateToEfficiency)+route");
    assert!(base.energy_j > 0, "energy must be accounted");
    assert!(base.idle_energy_j > 0);
    assert!(base.scale_downs > 0, "the quiet start must park instances");
    assert!(base.scale_ups > 0, "the traffic ramp must re-activate them");
    assert!(base.routed > 0, "arrivals must flow through the router");
    assert!(base.failures > 0, "failure paths stay exercised");
    assert!(base.completed > 0);
    // ...with all three tenants actually served...
    assert_eq!(base.per_tenant.len(), 3);
    for t in &base.per_tenant {
        assert!(t.arrived > 0, "{}: no arrivals", t.name);
        assert!(t.completed > 0, "{}: nothing served", t.name);
    }
    // ...and still be byte-identical at any shard count.
    for shards in [4u32, 8] {
        let r = run_sharded(&cfg, 42, shards, 1).expect("sharded controlled run");
        assert_eq!(r.to_json(), base_json, "shards = {shards}");
    }
}

#[test]
fn controlled_fleet_byte_identical_across_thread_counts() {
    let cfg = ctrl_cfg();
    let base = run_sharded(&cfg, 7, 8, 1).expect("single-threaded controlled");
    for threads in [2u32, 4, 8] {
        let r = run_sharded(&cfg, 7, 8, threads).expect("multi-threaded controlled");
        assert_eq!(r.to_json(), base.to_json(), "threads = {threads}");
    }
    let auto = run(&cfg, 7).expect("auto controlled run");
    assert_eq!(auto.to_json(), base.to_json());
}

#[test]
fn seeds_change_the_report() {
    for cfg in [test_cfg(), ctrl_cfg()] {
        let a = run_sharded(&cfg, 1, 4, 2).unwrap();
        let b = run_sharded(&cfg, 2, 4, 2).unwrap();
        assert_ne!(a.to_json(), b.to_json());
    }
}

#[test]
fn repeated_runs_are_stable() {
    for cfg in [test_cfg(), ctrl_cfg()] {
        let a = run(&cfg, 9).unwrap();
        let b = run(&cfg, 9).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }
}

/// Conservation for priority-aware largest-remainder routing: every
/// arrival is either routed onto a queue or rejected (queue overflow,
/// routing shed, or admission shed) — exactly, per tenant and fleet-wide
/// — and the per-tenant books sum back to the fleet totals.
#[test]
fn routing_conserves_arrivals_per_tenant_and_fleet_wide() {
    // Overdrive the controlled fleet so all three loss paths (queue
    // overflow via a tiny queue cap, admission shed at the ramp, routing
    // while parked/failed) are plausible, then check exact identities.
    let mut cfg = ctrl_cfg();
    cfg.workload.rate_per_instance_s = 8.0;
    cfg.max_queue_per_instance = 50;
    for (label, cfg) in [
        ("uncontrolled", test_cfg()),
        ("controlled", ctrl_cfg()),
        ("overloaded", cfg),
    ] {
        let r = run(&cfg, 13).unwrap();
        assert_eq!(r.routed + r.rejected, r.arrived, "{label}: fleet");
        assert!(
            r.rejected >= r.routing_shed + r.admission_shed,
            "{label}: shed kinds exceed rejects"
        );
        let mut arrived = 0;
        let mut routed = 0;
        let mut shed = 0;
        for t in &r.per_tenant {
            assert_eq!(
                t.routed + t.rejected + t.shed,
                t.arrived,
                "{label}: tenant {}",
                t.name
            );
            assert!(t.completed <= t.routed, "{label}: tenant {}", t.name);
            arrived += t.arrived;
            routed += t.routed;
            shed += t.shed;
        }
        assert_eq!(arrived, r.arrived, "{label}: tenant sum arrived");
        assert_eq!(routed, r.routed, "{label}: tenant sum routed");
        assert_eq!(shed, r.routing_shed + r.admission_shed, "{label}: sheds");
    }
}

/// The failure breakdown attributes every instance-down to a domain
/// kind: on campaign-free runs everything is i.i.d. (`independent`),
/// the event counters stay zero, and no chaos section is emitted.
#[test]
fn failure_breakdown_conserves_on_campaign_free_runs() {
    for cfg in [test_cfg(), ctrl_cfg()] {
        let r = run(&cfg, 42).unwrap();
        let b = &r.failure_breakdown;
        assert!(r.failures > 0, "test should exercise failure paths");
        assert_eq!(b.independent + b.rack + b.power, r.failures);
        assert_eq!(b.rack + b.power, 0, "no campaign: all failures i.i.d.");
        assert_eq!(b.partition_events + b.thermal_events, 0);
        assert!(r.chaos.is_none(), "chaos section only on campaign runs");
    }
}

/// The four config shapes the telemetry determinism gate sweeps:
/// monolithic, phase-split, DVFS-controlled, and a chaos campaign.
fn telemetry_variants() -> Vec<(&'static str, FleetConfig)> {
    let mono = test_cfg();
    let mut split = test_cfg();
    split.serving = ServingMode::split_demo(&split.gpu, split.gpus_per_instance);
    let mut dvfs = ctrl_cfg();
    dvfs.ctrl = dvfs.ctrl.map(|c| c.with_dvfs());
    let mut chaos = test_cfg();
    let camp = Campaign {
        kind: CampaignKind::RackOutages,
        events: 3,
        duration_s: 300.0,
        intensity: 0.5,
    };
    chaos.chaos = compile(&chaos, &DomainPlan::default(), &camp, 17).expect("compiled campaign");
    vec![
        ("mono", mono),
        ("split", split),
        ("dvfs", dvfs),
        ("chaos", chaos),
    ]
}

fn with_telemetry(cfg: &FleetConfig) -> FleetConfig {
    let mut c = cfg.clone();
    c.telemetry = TelemetryConfig {
        series_dt_us: 60_000_000,
        per_cell_series: true,
        trace_every: 4,
        profile: false,
    };
    c
}

/// Renders the deterministic telemetry artifacts of one run: the series
/// JSONL and the Chrome trace-event JSON.
fn telemetry_bytes(cfg: &FleetConfig, seed: u64, shards: u32, threads: u32) -> (String, String) {
    let mut fr = run_sharded_full(cfg, seed, shards, threads).expect("telemetry run");
    let series = fr.series.expect("series requested").to_jsonl();
    let trace = render_chrome_trace(fr.trace.as_mut().expect("trace requested"));
    (series, trace)
}

/// The tentpole guarantee for the deterministic telemetry layers: series
/// and trace bytes are identical at 1/2/8 threads and across shard
/// counts, for monolithic, phase-split, DVFS and chaos configs alike.
#[test]
fn telemetry_series_and_trace_byte_identical_across_shards_and_threads() {
    for (label, cfg) in telemetry_variants() {
        let cfg = with_telemetry(&cfg);
        let (series, trace) = telemetry_bytes(&cfg, 11, 1, 1);
        assert!(
            series.lines().count() > 1,
            "{label}: series must hold sampled windows"
        );
        assert!(
            trace.contains("\"traceEvents\""),
            "{label}: trace must render events"
        );
        for (shards, threads) in [(4u32, 2u32), (8, 8)] {
            let (s, t) = telemetry_bytes(&cfg, 11, shards, threads);
            assert_eq!(s, series, "{label}: series bytes at {shards}x{threads}");
            assert_eq!(t, trace, "{label}: trace bytes at {shards}x{threads}");
        }
    }
}

/// Observability must be free of Heisenberg effects: turning every
/// telemetry layer on (including profiling) leaves the report bytes
/// exactly as a bare run produces them.
#[test]
fn telemetry_does_not_change_report_bytes() {
    for (label, cfg) in telemetry_variants() {
        let bare = run_sharded(&cfg, 42, 4, 2).expect("bare run");
        let mut on = with_telemetry(&cfg);
        on.telemetry.profile = true;
        let observed = run_sharded_full(&on, 42, 4, 2).expect("observed run");
        assert_eq!(
            observed.report.to_json(),
            bare.to_json(),
            "{label}: telemetry changed the report"
        );
        assert!(observed.profile.is_some(), "{label}: profile requested");
    }
}

/// Skews the 8-cell test fleet (2 hot cells at 2.5x, 6 cold at 0.5x)
/// and attaches the fleet-scope spill-over balancer on top of whatever
/// cell-scope control the config already carries.
fn with_balancer(cfg: &FleetConfig) -> FleetConfig {
    let mut c = cfg.clone();
    c.cell_rate_multipliers = vec![2.5, 2.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5];
    // More sensitive than the defaults so even the lightly-queued
    // phase-split variant reliably crosses the hot threshold.
    let mut bal = BalancerConfig::default();
    bal.hot_factor = 1.1;
    bal.interval_s = 30.0;
    c.ctrl = Some(match c.ctrl {
        Some(ctrl) => ctrl.with_balancer(bal),
        None => CtrlConfig::builder().balancer(bal).build(),
    });
    c
}

/// The tentpole guarantee extended to the two-level control plane: with
/// the fleet-scope balancer active (skewed hot/cold cells, spill-over
/// routing between them), report, series and trace bytes stay identical
/// at 1/2/8 threads and across shard counts — for monolithic,
/// phase-split, DVFS and chaos configs alike.
#[test]
fn balancer_byte_identical_across_shards_and_threads() {
    for (label, cfg) in telemetry_variants() {
        let cfg = with_telemetry(&with_balancer(&cfg));
        let base = run_sharded_full(&cfg, 11, 1, 1).expect("balanced run");
        let report = base.report.to_json();
        let bal = base.report.balancer.as_ref().expect("balancer section");
        assert!(bal.spilled_out > 0, "{label}: skew must trigger spill");
        let mut fr = base;
        let series = fr.series.take().expect("series requested").to_jsonl();
        let trace = render_chrome_trace(fr.trace.as_mut().expect("trace requested"));
        for (shards, threads) in [(8u32, 2u32), (8, 8)] {
            let mut fr = run_sharded_full(&cfg, 11, shards, threads).expect("balanced run");
            assert_eq!(
                fr.report.to_json(),
                report,
                "{label}: report bytes at {shards}x{threads}"
            );
            let s = fr.series.take().expect("series requested").to_jsonl();
            let t = render_chrome_trace(fr.trace.as_mut().expect("trace requested"));
            assert_eq!(s, series, "{label}: series bytes at {shards}x{threads}");
            assert_eq!(t, trace, "{label}: trace bytes at {shards}x{threads}");
        }
    }
}

/// Exact conservation of spill-over routing: every redirected cohort is
/// admitted exactly once, the flow matrix's row/column sums match the
/// spilled totals on both sides, quota clamps stay within the admission
/// sheds, and the balanced fleet sees exactly the arrivals the isolated
/// fleet does — per tenant and fleet-wide.
#[test]
fn balancer_spill_routing_conserves_flows_and_arrivals() {
    for (label, cfg) in telemetry_variants() {
        let skewed = {
            let mut c = with_balancer(&cfg);
            c.ctrl = cfg.ctrl.clone(); // same cell-scope control, no balancer
            c
        };
        let off = run(&skewed, 13).expect("isolated run");
        let on = run(&with_balancer(&cfg), 13).expect("balanced run");
        assert!(
            off.balancer.is_none(),
            "{label}: no section without balancer"
        );
        let bal = on.balancer.as_ref().expect("balancer section");
        assert!(bal.spilled_out > 0, "{label}: skew must trigger spill");
        assert!(bal.spilled_cohorts > 0, "{label}: cohorts must be counted");
        // Source outflow == destination inflow == flow-matrix total.
        assert_eq!(bal.spilled_out, bal.spilled_in, "{label}: out vs in");
        assert_eq!(
            bal.flow.iter().map(|f| f.requests).sum::<u64>(),
            bal.spilled_out,
            "{label}: flow matrix total"
        );
        for f in &bal.flow {
            assert_ne!(f.src, f.dst, "{label}: self-edge in flow matrix");
            assert!(f.requests > 0, "{label}: empty flow edge");
        }
        // Canonical (src, dst) order makes the ledger deterministic.
        let keys: Vec<(u32, u32)> = bal.flow.iter().map(|f| (f.src, f.dst)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted, "{label}: flow matrix order");
        assert!(
            bal.quota_clamped <= on.admission_shed,
            "{label}: quota clamps are a subset of admission sheds"
        );
        // Spill-over redirects arrivals; it never invents or loses them.
        assert_eq!(on.arrived, off.arrived, "{label}: fleet arrivals");
        for (a, b) in on.per_tenant.iter().zip(&off.per_tenant) {
            assert_eq!(a.arrived, b.arrived, "{label}: tenant {}", a.name);
        }
        assert_eq!(on.routed + on.rejected, on.arrived, "{label}: fleet books");
    }
}

/// The headline behavior claim: on the skewed fleet (2 hot cells at
/// 2.5x, 6 cold at 0.5x), turning spill-over routing on measurably
/// raises completions and interactive SLO attainment versus isolated
/// cells — the hot cells' queues drain into cold-cell slack.
#[test]
fn balancer_improves_slo_attainment_on_skewed_fleet() {
    let mut skewed = test_cfg();
    skewed.cell_rate_multipliers = vec![2.5, 2.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5];
    let off = run(&skewed, 42).expect("isolated run");
    let on = run(&with_balancer(&test_cfg()), 42).expect("balanced run");
    assert_eq!(on.controller, "balancer");
    assert!(
        on.completed > off.completed,
        "balanced {} vs isolated {} completions",
        on.completed,
        off.completed
    );
    assert!(
        on.ttft_attainment > off.ttft_attainment + 0.01,
        "balanced TTFT attainment {} vs isolated {}",
        on.ttft_attainment,
        off.ttft_attainment
    );
    assert!(
        on.e2e_p99_s < off.e2e_p99_s,
        "balanced p99 {} vs isolated p99 {}",
        on.e2e_p99_s,
        off.e2e_p99_s
    );
}

/// Under the overloaded ramp, admission control sheds the best-effort
/// tenant only — the guaranteed classes are never admission-shed.
#[test]
fn overload_sheds_only_best_effort() {
    let mut cfg = ctrl_cfg();
    cfg.failure_acceleration = 0.0;
    cfg.workload.rate_per_instance_s = 10.0;
    let r = run(&cfg, 21).unwrap();
    assert!(r.admission_shed > 0, "ramp must trigger admission control");
    let by_name = |n: &str| r.per_tenant.iter().find(|t| t.name == n).unwrap();
    assert_eq!(by_name("chat").shed, 0);
    assert_eq!(by_name("batch").shed, 0);
    assert!(by_name("scavenge").shed > 0);
    assert_eq!(by_name("scavenge").priority, "best-effort");
}

//! Integration tests for the fleet simulator's determinism guarantee:
//! same seed ⇒ byte-identical `FleetReport` JSON at any shard count and
//! any thread count — with and without the `litegpu-ctrl` control plane
//! (autoscaler + power gating + cell router) enabled.

use litegpu_repro::fleet::{run, run_sharded, FleetConfig, TrafficPattern};

fn test_cfg() -> FleetConfig {
    let mut cfg = FleetConfig::lite_demo();
    cfg.instances = 64;
    cfg.cell_size = 8;
    cfg.horizon_s = 1800.0;
    cfg.failure_acceleration = 50_000.0;
    cfg
}

/// A fully-controlled fleet over a quiet→busy traffic ramp, so both
/// autoscaler directions (parks at the quiet start, activations at the
/// ramp) are exercised.
fn ctrl_cfg() -> FleetConfig {
    let mut cfg = FleetConfig::lite_ctrl_demo();
    cfg.instances = 64;
    cfg.cell_size = 8;
    cfg.horizon_s = 1800.0;
    cfg.failure_acceleration = 50_000.0;
    cfg.traffic.pattern =
        TrafficPattern::Trace(vec![(0.0, 0.2), (600.0, 0.2), (900.0, 1.6), (1800.0, 1.6)]);
    cfg
}

#[test]
fn byte_identical_json_across_1_4_8_shards() {
    let cfg = test_cfg();
    let base = run_sharded(&cfg, 42, 1, 1).expect("1-shard run");
    let base_json = base.to_json();
    assert!(base.failures > 0, "test should exercise failure paths");
    assert!(base.completed > 0);
    for shards in [4u32, 8] {
        let r = run_sharded(&cfg, 42, shards, 1).expect("sharded run");
        assert_eq!(r.to_json(), base_json, "shards = {shards}");
    }
}

#[test]
fn byte_identical_json_across_thread_counts() {
    let cfg = test_cfg();
    let base = run_sharded(&cfg, 7, 8, 1).expect("single-threaded");
    for threads in [2u32, 4, 8] {
        let r = run_sharded(&cfg, 7, 8, threads).expect("multi-threaded");
        assert_eq!(r.to_json(), base.to_json(), "threads = {threads}");
    }
    // And the auto-parallel entry point agrees too.
    let auto = run(&cfg, 7).expect("auto run");
    assert_eq!(auto.to_json(), base.to_json());
}

#[test]
fn controlled_fleet_byte_identical_across_1_4_8_shards() {
    let cfg = ctrl_cfg();
    let base = run_sharded(&cfg, 42, 1, 1).expect("1-shard controlled run");
    let base_json = base.to_json();
    // The run must actually exercise the control plane...
    assert_eq!(base.controller, "autoscale+gate(GateToEfficiency)+route");
    assert!(base.energy_j > 0, "energy must be accounted");
    assert!(base.idle_energy_j > 0);
    assert!(base.scale_downs > 0, "the quiet start must park instances");
    assert!(base.scale_ups > 0, "the traffic ramp must re-activate them");
    assert!(base.routed > 0, "arrivals must flow through the router");
    assert!(base.failures > 0, "failure paths stay exercised");
    assert!(base.completed > 0);
    // ...and still be byte-identical at any shard count.
    for shards in [4u32, 8] {
        let r = run_sharded(&cfg, 42, shards, 1).expect("sharded controlled run");
        assert_eq!(r.to_json(), base_json, "shards = {shards}");
    }
}

#[test]
fn controlled_fleet_byte_identical_across_thread_counts() {
    let cfg = ctrl_cfg();
    let base = run_sharded(&cfg, 7, 8, 1).expect("single-threaded controlled");
    for threads in [2u32, 4, 8] {
        let r = run_sharded(&cfg, 7, 8, threads).expect("multi-threaded controlled");
        assert_eq!(r.to_json(), base.to_json(), "threads = {threads}");
    }
    let auto = run(&cfg, 7).expect("auto controlled run");
    assert_eq!(auto.to_json(), base.to_json());
}

#[test]
fn seeds_change_the_report() {
    for cfg in [test_cfg(), ctrl_cfg()] {
        let a = run_sharded(&cfg, 1, 4, 2).unwrap();
        let b = run_sharded(&cfg, 2, 4, 2).unwrap();
        assert_ne!(a.to_json(), b.to_json());
    }
}

#[test]
fn repeated_runs_are_stable() {
    for cfg in [test_cfg(), ctrl_cfg()] {
        let a = run(&cfg, 9).unwrap();
        let b = run(&cfg, 9).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }
}

//! Integration tests pinning the qualitative shapes of the paper's
//! Figure 3 — the reproduction's core contract.
//!
//! Absolute numbers depend on the authors' unpublished spreadsheet; these
//! tests assert the *orderings and crossovers* the paper reports:
//! who wins, roughly by how much, and in which direction each Table-1
//! customization moves each phase.

use litegpu_roofline::{figures, EngineParams};

fn fig3a() -> figures::Figure3 {
    figures::figure3a(&EngineParams::paper_defaults()).expect("figure 3a must generate")
}

fn fig3b() -> figures::Figure3 {
    figures::figure3b(&EngineParams::paper_defaults()).expect("figure 3b must generate")
}

#[test]
fn prefill_h100_is_the_normalization_baseline() {
    let f = fig3a();
    for m in &f.models {
        let h = f.point(m, "H100").expect("H100 bar");
        assert!((h.normalized - 1.0).abs() < 1e-9, "{m}");
    }
}

#[test]
fn prefill_lite_underperforms_and_degrades_with_model_size() {
    // Paper: "As the model sizes grow, the 'Lite' cluster underperforms
    // due to increased collectives causing network bottlenecks."
    let f = fig3a();
    let series: Vec<f64> = f
        .models
        .iter()
        .map(|m| f.point(m, "Lite").unwrap().normalized)
        .collect();
    for (i, v) in series.iter().enumerate() {
        assert!(*v < 1.0, "Lite prefill must trail H100 ({i}: {v})");
    }
    assert!(
        series[0] > series[2],
        "degradation grows with model size: {series:?}"
    );
}

#[test]
fn prefill_net_bw_compensates() {
    // Paper: "Increasing the network bandwidth compensates the increased
    // network demand."
    let f = fig3a();
    for m in &f.models {
        let lite = f.point(m, "Lite").unwrap().normalized;
        let netbw = f.point(m, "Lite+NetBW").unwrap().normalized;
        assert!(netbw > lite, "{m}: +NetBW {netbw} must beat Lite {lite}");
        assert!(
            netbw > 0.85,
            "{m}: +NetBW should roughly recover parity, got {netbw}"
        );
    }
}

#[test]
fn prefill_overclocking_improves_further() {
    // Paper: "overclocking improves performance further as prefill
    // workloads are compute-bound."
    let f = fig3a();
    for m in &f.models {
        let netbw = f.point(m, "Lite+NetBW").unwrap().normalized;
        let flops = f.point(m, "Lite+NetBW+FLOPS").unwrap().normalized;
        assert!(
            flops > netbw,
            "{m}: +FLOPS {flops} must beat +NetBW {netbw}"
        );
    }
    // For the smallest model the overclocked variant beats the H100.
    let best = f
        .point("Llama3-70B", "Lite+NetBW+FLOPS")
        .unwrap()
        .normalized;
    assert!(best > 1.0, "70B +FLOPS should exceed parity, got {best}");
}

#[test]
fn decode_lite_underperforms_and_degrades_with_model_size() {
    // Paper: "As model sizes and thus the number of required GPUs grow,
    // the 'Lite' cluster underperforms."
    let f = fig3b();
    let series: Vec<f64> = f
        .models
        .iter()
        .map(|m| f.point(m, "Lite").unwrap().normalized)
        .collect();
    for v in &series {
        assert!(*v < 1.0, "Lite decode must trail H100: {series:?}");
    }
    assert!(
        series[0] > series[2],
        "biggest model degrades most: {series:?}"
    );
}

#[test]
fn decode_mem_bw_exceeds_h100_for_gqa_and_mha_midsize() {
    // Paper: "As Lite-GPUs utilize their available shoreline for more
    // memory bandwidth, performance improves and exceeds the current H100
    // cluster." Our model reproduces the exceedance for Llama3-70B and
    // GPT3-175B; Llama3-405B recovers but stays network-limited (see
    // EXPERIMENTS.md for the documented deviation).
    let f = fig3b();
    for m in ["Llama3-70B", "GPT3-175B"] {
        let lite = f.point(m, "Lite").unwrap().normalized;
        let membw = f.point(m, "Lite+MemBW").unwrap().normalized;
        assert!(membw > lite, "{m}: +MemBW must improve on Lite");
        assert!(membw > 1.0, "{m}: +MemBW must exceed H100, got {membw}");
    }
    let v405 = f.point("Llama3-405B", "Lite+MemBW").unwrap().normalized;
    let l405 = f.point("Llama3-405B", "Lite").unwrap().normalized;
    assert!(v405 > l405, "405B: +MemBW still improves on Lite");
}

#[test]
fn decode_adding_net_bw_helps_more() {
    let f = fig3b();
    for m in &f.models {
        let membw = f.point(m, "Lite+MemBW").unwrap().normalized;
        let both = f.point(m, "Lite+MemBW+NetBW").unwrap().normalized;
        assert!(both >= membw, "{m}: +NetBW on top must not hurt");
    }
}

#[test]
fn decode_slos_respected_by_all_best_configs() {
    let f = fig3b();
    for p in &f.points {
        assert!(
            p.latency_s <= 0.050 + 1e-9,
            "{} on {}: TBT {}",
            p.model,
            p.gpu,
            p.latency_s
        );
    }
}

#[test]
fn prefill_slos_respected_by_all_best_configs() {
    let f = fig3a();
    for p in &f.points {
        assert!(
            p.latency_s <= 1.0 + 1e-9,
            "{} on {}: TTFT {}",
            p.model,
            p.gpu,
            p.latency_s
        );
    }
}

#[test]
fn lite_configs_use_more_gpus_than_h100() {
    // The scale-of-distribution point of §3: the same model spreads over
    // more (smaller) devices.
    let f = fig3b();
    for m in &f.models {
        let h = f.point(m, "H100").unwrap().gpus;
        let l = f.point(m, "Lite").unwrap().gpus;
        assert!(
            l > h,
            "{m}: Lite best config must use more GPUs ({l} vs {h})"
        );
    }
}

#[test]
fn search_sometimes_prefers_fewer_gpus_than_max() {
    // Paper: "the search may return that running a model with less GPUs
    // than the maximum yields better throughput per SM."
    let f3a = fig3a();
    let f3b = fig3b();
    let any_below_max = f3a
        .points
        .iter()
        .chain(f3b.points.iter())
        .any(|p| p.gpu == "H100" && p.gpus < 8);
    assert!(
        any_below_max,
        "expected at least one sub-maximal H100 config"
    );
}
